// Package core wires the substrates into the full D.A.V.I.D.E. power-aware
// stack of Fig. 4 in the paper: the pilot cluster (hardware models), the
// per-node energy gateways publishing over a real MQTT broker, the
// telemetry aggregator and per-job energy accounting (EA), the job power
// predictors (EP), and the power-aware scheduler. It is the paper's
// "system middleware software" in one object.
//
// Two planes coexist:
//
//   - the virtual-time plane: job scheduling, node power traces and energy
//     accounting run on simulated time, so months of machine operation
//     take milliseconds;
//   - the wall-clock plane: the MQTT telemetry path is real TCP — the
//     StreamWindow method replays a virtual-time window through actual
//     gateways, a broker and subscriber agents, so the telemetry numbers
//     (throughput, delivered-energy accuracy) are measured, not modelled.
package core

import (
	"context"
	"errors"
	"fmt"
	"math"
	"sort"
	"time"

	"davide/internal/accounting"
	"davide/internal/chaos"
	"davide/internal/cluster"
	"davide/internal/fleet"
	"davide/internal/gateway"
	"davide/internal/mqtt"
	"davide/internal/obs"
	"davide/internal/predictor"
	"davide/internal/sched"
	"davide/internal/sensor"
	"davide/internal/telemetry"
	"davide/internal/tsdb"
	"davide/internal/workload"
)

// System is the assembled D.A.V.I.D.E. stack.
type System struct {
	Cluster   *cluster.Cluster
	Ledger    *accounting.Ledger
	Predictor predictor.Predictor

	// IdleNodePowerW is the idle draw used in node signals and billing.
	IdleNodePowerW float64

	// StreamWorkers bounds how many gateways publish concurrently during
	// telemetry replays; 0 means one worker per CPU, 1 reproduces the
	// sequential one-node-at-a-time replay.
	StreamWorkers int

	// StreamCodec selects the batch wire format telemetry replays publish
	// (gateway.CodecBinary by default, gateway.CodecJSON for the original
	// text format).
	StreamCodec gateway.Codec

	// StoreOptions tunes the telemetry store each replay writes into
	// (chunk size, rollup resolutions, raw retention). Zero value =
	// tsdb defaults.
	StoreOptions tsdb.Options

	// StreamFaults, when non-nil, runs telemetry replays under
	// deterministic fault injection (see internal/chaos and
	// fleet.ChaosPreset): the E18 chaos-soak path. A *chaos.Plan runs
	// one schedule; a *chaos.Composite (fleet.ChaosStack) runs a
	// phase-windowed stack keyed off payload virtual time.
	StreamFaults chaos.Planner

	// StreamBatchSamples overrides the per-batch sample count of
	// telemetry replays (0 = the fleet default of 512). Chaos soaks use
	// smaller batches so per-packet faults get statistics.
	StreamBatchSamples int

	// StreamRacks, when > 1, routes telemetry replays through the tiered
	// fabric (fleet.Plane): per-rack brokers with bridge uplinks into a
	// spine, instead of one broker for the whole fleet. 0 or 1 keeps the
	// paper's single-broker pilot layout. RunLive always runs
	// single-broker (the control plane is pilot-scale by construction).
	StreamRacks int

	// BridgeFaults, when non-nil, injects deterministic faults on the
	// rack→spine uplinks of a tiered replay (plan keyed by rack index;
	// see fleet.ChaosBridgePresetNames). Requires StreamRacks > 1. The
	// replay then also attaches a spine-side verification aggregator and
	// reports the spine copy's accounting in the result.
	BridgeFaults chaos.Planner

	// Obs, when non-nil, instruments every replay and live run: stage
	// traces, broker/bridge/fleet/store/scheduler counters all publish
	// into this registry (DESIGN.md §9), live runs self-ingest a health
	// snapshot per control tick, and replays one at end of window. The
	// registry outlives individual plants, so counters accumulate across
	// replays and func-backed series re-point to the newest plant.
	Obs *obs.Registry

	// Node power signals from the last RunScheduled, one per node.
	signals []*sensor.Piecewise
	// The telemetry store filled by the most recent replay
	// (StreamWindow or JobEnergyFromTelemetry).
	store *tsdb.DB
	// Assignments from the last RunScheduled: job ID -> node IDs.
	assignments map[int][]int
	lastResult  *sched.Result
	jobsByID    map[int]workload.Job
	// trainJobs is the predictor's initial history, kept so RunLive can
	// seed an online-retraining wrapper around the same model.
	trainJobs []workload.Job
	// selfIngest writes periodic registry snapshots into its own health
	// store when Obs is set (lazily built; see SelfIngest).
	selfIngest *obs.SelfIngest
}

// SelfIngest returns the health-series store the instrumented plane
// writes its own registry snapshots into (one point per live control
// tick, one at the end of each replay window) — the plane monitoring
// itself through the same tsdb machinery it monitors the cluster with.
// Nil until Obs is set and a replay or live run has executed.
func (s *System) SelfIngest() *obs.SelfIngest { return s.selfIngest }

// obsSelfIngest lazily builds the self-ingest sink for the registry.
func (s *System) obsSelfIngest() *obs.SelfIngest {
	if s.Obs == nil {
		return nil
	}
	if s.selfIngest == nil {
		s.selfIngest = obs.NewSelfIngest(s.Obs)
	}
	return s.selfIngest
}

// NewSystem builds the pilot system with a trained power predictor.
func NewSystem(trainJobs []workload.Job) (*System, error) {
	c, err := cluster.New(cluster.PilotConfig())
	if err != nil {
		return nil, err
	}
	s := &System{
		Cluster:        c,
		Ledger:         accounting.NewLedger(),
		IdleNodePowerW: 360,
	}
	p := predictor.NewMeanPerKey()
	if len(trainJobs) > 0 {
		if err := p.Train(trainJobs); err != nil {
			return nil, err
		}
		s.Predictor = p
		s.trainJobs = append([]workload.Job(nil), trainJobs...)
	}
	return s, nil
}

// assignNodes replays the schedule to give each job concrete node IDs.
// The scheduler guaranteed capacity, so a greedy free-list replay always
// succeeds.
func assignNodes(jobs []workload.Job, res *sched.Result, nodeCount int) (map[int][]int, error) {
	type ev struct {
		t     float64
		endEv bool
		job   workload.Job
	}
	var evs []ev
	for _, j := range jobs {
		start, ok := res.Starts[j.ID]
		if !ok {
			return nil, fmt.Errorf("core: job %d missing from schedule", j.ID)
		}
		evs = append(evs, ev{t: start, job: j})
		evs = append(evs, ev{t: res.Ends[j.ID], endEv: true, job: j})
	}
	sort.Slice(evs, func(i, j int) bool {
		if evs[i].t != evs[j].t {
			return evs[i].t < evs[j].t
		}
		// Process completions before starts at the same instant.
		return evs[i].endEv && !evs[j].endEv
	})
	free := make([]int, nodeCount)
	for i := range free {
		free[i] = i
	}
	held := make(map[int][]int)
	out := make(map[int][]int, len(jobs))
	for _, e := range evs {
		if e.endEv {
			free = append(free, held[e.job.ID]...)
			delete(held, e.job.ID)
			sort.Ints(free)
			continue
		}
		if len(free) < e.job.Nodes {
			return nil, fmt.Errorf("core: replay ran out of nodes for job %d", e.job.ID)
		}
		take := append([]int(nil), free[:e.job.Nodes]...)
		free = free[e.job.Nodes:]
		held[e.job.ID] = take
		out[e.job.ID] = take
	}
	return out, nil
}

// RunScheduled executes the workload under the given scheduling
// configuration, assigns concrete nodes, builds per-node power signals and
// fills the energy ledger with each job's analytic energy-to-solution.
func (s *System) RunScheduled(jobs []workload.Job, cfg sched.Config) (*sched.Result, error) {
	if cfg.Nodes == 0 {
		cfg.Nodes = s.Cluster.NodeCount()
	}
	if cfg.Nodes != s.Cluster.NodeCount() {
		return nil, fmt.Errorf("core: config nodes %d != cluster %d", cfg.Nodes, s.Cluster.NodeCount())
	}
	if cfg.IdleNodePowerW == 0 {
		cfg.IdleNodePowerW = s.IdleNodePowerW
	}
	if cfg.Estimator == nil && s.Predictor != nil && cfg.PowerCapW > 0 {
		cfg.Estimator = s.Predictor.Predict
	}
	sim, err := sched.NewSimulator(cfg, jobs)
	if err != nil {
		return nil, err
	}
	res, err := sim.Run()
	if err != nil {
		return nil, err
	}
	assign, err := assignNodes(jobs, res, cfg.Nodes)
	if err != nil {
		return nil, err
	}

	// Build per-node piecewise power signals from the assignment.
	type edge struct {
		t     float64
		delta float64
	}
	perNode := make([][]edge, cfg.Nodes)
	for _, j := range jobs {
		for _, n := range assign[j.ID] {
			perNode[n] = append(perNode[n], edge{t: res.Starts[j.ID], delta: j.TruePowerPerNode - s.IdleNodePowerW})
			perNode[n] = append(perNode[n], edge{t: res.Ends[j.ID], delta: -(j.TruePowerPerNode - s.IdleNodePowerW)})
		}
	}
	s.signals = make([]*sensor.Piecewise, cfg.Nodes)
	for n := range perNode {
		edges := perNode[n]
		sort.Slice(edges, func(i, j int) bool { return edges[i].t < edges[j].t })
		sig := sensor.NewPiecewise(0, s.IdleNodePowerW)
		level := s.IdleNodePowerW
		for i := 0; i < len(edges); {
			t := edges[i].t
			for i < len(edges) && edges[i].t == t {
				level += edges[i].delta
				i++
			}
			if err := sig.Set(t, level); err != nil {
				return nil, err
			}
		}
		s.signals[n] = sig
	}

	// Fill the ledger with analytic per-job energy.
	s.jobsByID = make(map[int]workload.Job, len(jobs))
	for _, j := range jobs {
		s.jobsByID[j.ID] = j
		e := 0.0
		for range assign[j.ID] {
			e += j.TruePowerPerNode * (res.Ends[j.ID] - res.Starts[j.ID])
		}
		if err := s.Ledger.Add(accounting.Record{
			JobID: j.ID, User: j.User, App: j.App.String(), Nodes: j.Nodes,
			StartAt: res.Starts[j.ID], EndAt: res.Ends[j.ID], EnergyJ: e,
		}); err != nil {
			return nil, err
		}
	}
	s.assignments = assign
	s.lastResult = res
	return res, nil
}

// Assignments returns the node assignment of the last run.
func (s *System) Assignments() map[int][]int { return s.assignments }

// NodeSignal returns node n's power signal from the last run.
func (s *System) NodeSignal(n int) (*sensor.Piecewise, error) {
	if s.signals == nil {
		return nil, errors.New("core: no scheduled run yet")
	}
	if n < 0 || n >= len(s.signals) {
		return nil, fmt.Errorf("core: node %d out of range", n)
	}
	return s.signals[n], nil
}

// Store returns the compressed telemetry store filled by the most recent
// replay (StreamWindow or JobEnergyFromTelemetry), for post-hoc
// interrogation — range queries, downsampled fetches, footprint stats —
// the role the ExaMon back end plays in the paper's monitoring plane.
// Nil before the first replay.
func (s *System) Store() *tsdb.DB { return s.store }

// StreamResult summarises one real-MQTT telemetry replay.
type StreamResult struct {
	Window          float64 // seconds of virtual time streamed
	NodesStreamed   int
	SamplesSent     int
	BatchesSent     int
	BrokerPublishes int64
	BrokerDropped   int64
	// BrokerFanoutEncodedOnce counts deliveries that shared an earlier
	// subscriber's PUBLISH encoding (encode-once fan-out hits).
	BrokerFanoutEncodedOnce int64
	// BrokerBufReuses / ClientBufReuses count pooled packet-buffer
	// reuses on the broker's read path and the gateways' publish path.
	BrokerBufReuses int64
	ClientBufReuses int64
	// WireBytesPerSample is the mean encoded batch payload size per power
	// sample — the figure the wire codec controls (~20 B/sample as JSON,
	// a fraction of that in the binary format).
	WireBytesPerSample float64
	WallClock          time.Duration
	// MaxEnergyErrPct is the worst per-node deviation between the
	// telemetry-derived energy and the analytic truth.
	MaxEnergyErrPct float64
	// PerNode carries each gateway's publish/delivery statistics.
	PerNode []fleet.NodeStats
	// Faults sums the injected-fault counters across the fleet (all
	// zero unless the replay ran under StreamFaults); GatewayRestarts
	// counts injected crash/reconnect cycles.
	Faults          chaos.Counters
	GatewayRestarts int
	// ReorderedBatches / UndecodableDropped are the aggregator-side
	// effects of the injected faults: batches that arrived out of order
	// or overlapping, and payloads that failed to decode. Under chaos
	// they must match the injected cause counts exactly
	// (Faults.ExpectedReorders and Faults.Corrupted).
	ReorderedBatches   int
	UndecodableDropped int
	// StoreOutOfOrderDropped counts samples that arrived too far behind
	// the store's sealed horizon to ingest. The store keeps a rolling
	// head window of at least ChunkSize samples and StreamWindow
	// enforces hold-span × batch-size ≤ chunk-size, so this stays zero
	// for every preset (asserted by E18); non-zero means unaccounted
	// loss.
	StoreOutOfOrderDropped int
	// Racks is the number of rack broker cells the replay streamed
	// through (1 = the single-broker pilot path). On the tiered path the
	// Broker* fields above sum over the rack brokers — the primary
	// ingest tier; the spine's own traffic is accounted by Bridge.
	Racks int
	// Bridge sums the rack→spine uplink accounting (zero on the
	// single-broker path).
	Bridge mqtt.BridgeStats
	// BridgeFaults sums the injected uplink faults (zero unless
	// System.BridgeFaults was set).
	BridgeFaults chaos.Counters
	// SpineSamples is the verified sample count of the spine copy,
	// and SpineMaxEnergyErrPct the worst per-node deviation between the
	// spine copy's energy and the rack-tier ingest. Both are populated
	// only when System.BridgeFaults is set (the spine verification
	// aggregator costs a full extra ingest path, so it is attached only
	// when the spine copy is the object under test).
	SpineSamples         int
	SpineMaxEnergyErrPct float64
}

// chaosSafeBatch reconciles a faulted replay's per-batch sample count
// with the store's reordering tolerance. A held batch is released up to
// HoldSpan batches late, so the store's head window must absorb
// HoldSpan × batch samples or late releases fall behind the sealed
// horizon as unaccounted loss, silently voiding the preset's energy
// error bound. A nil plan passes batchSamples through unchanged.
func chaosSafeBatch(plan chaos.Planner, nodes, batchSamples int, opts tsdb.Options) (int, error) {
	if plan == nil {
		return batchSamples, nil
	}
	maxSpan := 0
	for n := 0; n < nodes; n++ {
		if sp := plan.MaxHoldSpan(n); sp > maxSpan {
			maxSpan = sp
		}
	}
	if maxSpan == 0 {
		return batchSamples, nil
	}
	chunk := opts.ChunkSize
	if chunk <= 0 {
		chunk = tsdb.DefaultChunkSize
	}
	if batchSamples == 0 {
		// The fleet default of 512 samples/batch would violate the
		// constraint; pick the largest compliant batch.
		batchSamples = chunk / maxSpan
	}
	// Rejects an explicit violation and a hold span no batch size can
	// satisfy (maxSpan > chunk leaves the auto-sized batch at 0) alike.
	if batchSamples < 1 || maxSpan*batchSamples > chunk {
		return 0, fmt.Errorf(
			"core: chaos hold span %d × %d samples/batch exceeds the store's %d-sample reorder window — late releases would be dropped unaccounted",
			maxSpan, batchSamples, chunk)
	}
	return batchSamples, nil
}

// plant is one realized telemetry transport: broker → store-backed
// aggregator behind a parallel-ingest pool → gateway fleet, built from
// the System's transport knobs (codec, workers, faults, batch size,
// store options). It is the shared substrate of window replays and
// closed-loop runs.
type plant struct {
	broker *mqtt.Broker
	db     *tsdb.DB
	agg    *telemetry.Aggregator
	ingest *telemetry.Ingest
	sub    *mqtt.Client
	fleet  *fleet.Fleet
}

// newPlant assembles the transport. nodes bounds the chaos hold-span
// check; prefix/seedBase/aggID keep concurrent plants' client IDs and
// monitor noise streams distinct.
func (s *System) newPlant(nodes int, sampleRate float64, prefix string, seedBase int64, aggID string) (*plant, error) {
	broker, err := mqtt.NewBroker("127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	db := tsdb.New(s.StoreOptions)
	agg := telemetry.NewAggregatorOn(db)
	var trace *obs.StageTrace
	if reg := s.Obs; reg != nil {
		// Single-broker pilot layout: one rack cell's worth of series
		// (rack "r00"), same names as the tiered plane publishes.
		trace = obs.NewStageTrace(reg, 1)
		agg.SetTrace(trace)
		broker.Trace = fleet.StampHook(trace, obs.StageFanout)
		obs.RegisterBroker(reg, obs.RackLabel(0), broker)
		obs.RegisterStore(reg, db)
		reg.CounterFunc("davide_agg_dropped_total",
			func() float64 { return float64(agg.Dropped()) })
		reg.CounterFunc("davide_agg_reordered_total",
			func() float64 { return float64(agg.Reordered()) })
	}
	ingest, sub, err := agg.AttachParallel(broker.Addr(), aggID, 0)
	if err != nil {
		_ = broker.Close()
		return nil, err
	}
	p := &plant{broker: broker, db: db, agg: agg, ingest: ingest, sub: sub}
	batchSamples, err := chaosSafeBatch(s.StreamFaults, nodes, s.StreamBatchSamples, s.StoreOptions)
	if err != nil {
		p.close()
		return nil, err
	}
	fl, err := fleet.New(broker.Addr(), fleet.GatewaySpec{
		SampleRate: sampleRate, ClientPrefix: prefix, SeedBase: seedBase,
		Codec: s.StreamCodec, Faults: s.StreamFaults,
		BatchSamples: batchSamples,
	}, s.StreamWorkers)
	if err != nil {
		p.close()
		return nil, err
	}
	if s.Obs != nil {
		fl.AttachObs(s.Obs, obs.RackLabel(0), trace)
	}
	p.fleet = fl
	return p, nil
}

// close tears the plant down in dependency order: publishers first,
// then the subscriber session, its decode pool, and the broker.
func (p *plant) close() {
	if p.fleet != nil {
		_ = p.fleet.Close()
	}
	_ = p.sub.Close()
	p.ingest.Close()
	_ = p.broker.Close()
}

// StreamWindow replays [t0, t1] of the last run's node signals through
// real gateways -> MQTT broker -> aggregator agents over loopback TCP,
// using a monitor of the given output rate (samples/s of virtual time).
// It verifies the delivered energy against the analytic truth and returns
// streaming statistics. nodes limits the replay to the first k nodes
// (0 = all).
func (s *System) StreamWindow(t0, t1, sampleRate float64, nodes int) (StreamResult, error) {
	if s.signals == nil {
		return StreamResult{}, errors.New("core: no scheduled run yet")
	}
	if t1 <= t0 {
		return StreamResult{}, errors.New("core: empty window")
	}
	if sampleRate <= 0 {
		return StreamResult{}, errors.New("core: sample rate must be positive")
	}
	if nodes <= 0 || nodes > len(s.signals) {
		nodes = len(s.signals)
	}
	if s.BridgeFaults != nil && s.StreamRacks <= 1 {
		return StreamResult{}, errors.New("core: BridgeFaults requires a tiered replay (StreamRacks > 1)")
	}
	if s.StreamRacks > 1 {
		return s.streamWindowTiered(t0, t1, sampleRate, nodes)
	}
	start := time.Now()

	pl, err := s.newPlant(nodes, sampleRate, "gw", 1000, "core-aggregator")
	if err != nil {
		return StreamResult{}, err
	}
	defer pl.close()
	db, agg, fl := pl.db, pl.agg, pl.fleet

	streams := make([]fleet.NodeStream, nodes)
	for n := 0; n < nodes; n++ {
		streams[n] = fleet.NodeStream{Node: n, Signal: s.signals[n]}
	}
	st, err := fl.Stream(context.Background(), streams, t0, t1, agg)
	if err != nil {
		return StreamResult{}, err
	}
	if st.Faults.Corrupted > 0 {
		// Corrupted packets carry no samples, so the fleet's per-node
		// delivery handshake cannot wait on them; a corrupt final packet
		// may still be in flight here. Barrier on the exact injected
		// count so Reordered/UndecodableDropped below are settled; on
		// timeout proceed with whatever arrived (lossy QoS-0 semantics).
		wctx, cancel := context.WithTimeout(context.Background(), fleet.DefaultWaitTimeout)
		_ = agg.WaitDropped(wctx, int(st.Faults.Corrupted))
		cancel()
	}
	s.store = db
	res := StreamResult{
		Window: t1 - t0, NodesStreamed: nodes, Racks: 1,
		SamplesSent: st.Samples, BatchesSent: st.Batches, PerNode: st.PerNode,
		WireBytesPerSample:     st.WireBytesPerSample(),
		ClientBufReuses:        st.ClientBufReuses,
		Faults:                 st.Faults,
		GatewayRestarts:        st.Restarts,
		ReorderedBatches:       agg.Reordered(),
		UndecodableDropped:     agg.Dropped(),
		StoreOutOfOrderDropped: db.Stats().OutOfOrderDropped,
	}

	res.MaxEnergyErrPct, err = s.maxEnergyErrPct(agg, t0, t1, nodes)
	if err != nil {
		return StreamResult{}, err
	}
	res.BrokerPublishes = pl.broker.Stats.PublishesOut.Load()
	res.BrokerDropped = pl.broker.Stats.Dropped.Load()
	res.BrokerFanoutEncodedOnce = pl.broker.Stats.FanoutEncodedOnce.Load()
	res.BrokerBufReuses = pl.broker.Stats.BufReuses.Load()
	if si := s.obsSelfIngest(); si != nil {
		si.Record(t1)
	}
	res.WallClock = time.Since(start)
	return res, nil
}

// maxEnergyErrPct verifies the aggregator's per-node energies against
// the analytic truth over [t0, t1] and returns the worst deviation.
func (s *System) maxEnergyErrPct(agg *telemetry.Aggregator, t0, t1 float64, nodes int) (float64, error) {
	worst := 0.0
	for n := 0; n < nodes; n++ {
		got, err := agg.NodeEnergy(n, t0, t1)
		if err != nil {
			return 0, fmt.Errorf("core: node %d telemetry: %w", n, err)
		}
		want, err := s.signals[n].Energy(t0, t1)
		if err != nil {
			return 0, err
		}
		if want > 0 {
			if errPct := 100 * math.Abs(got-want) / want; errPct > worst {
				worst = errPct
			}
		}
	}
	return worst, nil
}

// streamWindowTiered is StreamWindow on the tiered fabric: the fleet is
// partitioned over StreamRacks rack brokers (fleet.Plane), each with its
// own ingest pool into one shared store, and bridges forward every
// rack's stream into a spine broker. When BridgeFaults is set, a
// verification aggregator rides the spine and the result carries the
// spine copy's accounting next to the rack-tier truth.
func (s *System) streamWindowTiered(t0, t1, sampleRate float64, nodes int) (StreamResult, error) {
	start := time.Now()
	batchSamples, err := chaosSafeBatch(s.StreamFaults, nodes, s.StreamBatchSamples, s.StoreOptions)
	if err != nil {
		return StreamResult{}, err
	}
	p, err := fleet.NewPlane(fleet.PlaneSpec{
		Racks:     s.StreamRacks,
		NodesHint: nodes,
		Gateway: fleet.GatewaySpec{
			SampleRate: sampleRate, ClientPrefix: "gw", SeedBase: 1000,
			Codec: s.StreamCodec, Faults: s.StreamFaults,
			BatchSamples: batchSamples,
		},
		BridgeFaults: s.BridgeFaults,
		StoreOptions: s.StoreOptions,
		Obs:          s.Obs,
	})
	if err != nil {
		return StreamResult{}, err
	}
	defer func() { _ = p.Close() }()
	agg := p.Aggregator()

	// The spine copy is the object under test only when uplink faults
	// are injected; attach its verification aggregator before any
	// traffic flows so the ledger is complete.
	var spineAgg *telemetry.Aggregator
	if s.BridgeFaults != nil {
		spineAgg = telemetry.NewAggregator()
		ingest, sub, err := spineAgg.AttachParallel(p.SpineAddr(), "core-spine-verify", 0)
		if err != nil {
			return StreamResult{}, err
		}
		defer ingest.Close()
		defer func() { _ = sub.Close() }()
	}

	streams := make([]fleet.NodeStream, nodes)
	for n := 0; n < nodes; n++ {
		streams[n] = fleet.NodeStream{Node: n, Signal: s.signals[n]}
	}
	st, err := p.Stream(context.Background(), streams, t0, t1)
	if err != nil {
		return StreamResult{}, err
	}
	if st.Faults.Corrupted > 0 {
		// Same barrier as the single-broker path: settle the corrupted-
		// payload counters before reading them.
		wctx, cancel := context.WithTimeout(context.Background(), fleet.DefaultWaitTimeout)
		_ = agg.WaitDropped(wctx, int(st.Faults.Corrupted))
		cancel()
	}
	s.store = p.Store()
	res := StreamResult{
		Window: t1 - t0, NodesStreamed: nodes, Racks: st.Racks,
		SamplesSent: st.Samples, BatchesSent: st.Batches, PerNode: st.PerNode,
		WireBytesPerSample:     st.WireBytesPerSample(),
		ClientBufReuses:        st.ClientBufReuses,
		Faults:                 st.Faults,
		GatewayRestarts:        st.Restarts,
		Bridge:                 st.Bridge,
		BridgeFaults:           st.BridgeFaults,
		ReorderedBatches:       agg.Reordered(),
		UndecodableDropped:     agg.Dropped(),
		StoreOutOfOrderDropped: p.Store().Stats().OutOfOrderDropped,
	}
	res.MaxEnergyErrPct, err = s.maxEnergyErrPct(agg, t0, t1, nodes)
	if err != nil {
		return StreamResult{}, err
	}
	for r := 0; r < p.Racks(); r++ {
		bs := &p.RackBroker(r).Stats
		res.BrokerPublishes += bs.PublishesOut.Load()
		res.BrokerDropped += bs.Dropped.Load()
		res.BrokerFanoutEncodedOnce += bs.FanoutEncodedOnce.Load()
		res.BrokerBufReuses += bs.BufReuses.Load()
	}

	if spineAgg != nil {
		// The spine copy must account to exactly published − lost +
		// duplicated (the uplink fault ledger), then its energies are
		// checked against the rack-tier ingest.
		want := st.Samples - int(st.BridgeFaults.SamplesLost) + int(st.BridgeFaults.SamplesDuplicated)
		spineTotal := func() int {
			got := 0
			for n := 0; n < nodes; n++ {
				got += spineAgg.Samples(n)
			}
			return got
		}
		deadline := time.Now().Add(fleet.DefaultWaitTimeout)
		for spineTotal() != want && time.Now().Before(deadline) {
			time.Sleep(500 * time.Microsecond)
		}
		if got := spineTotal(); got != want {
			return StreamResult{}, fmt.Errorf(
				"core: spine copy settled at %d samples, want %d (published %d − lost %d + duplicated %d)",
				got, want, st.Samples, st.BridgeFaults.SamplesLost, st.BridgeFaults.SamplesDuplicated)
		}
		res.SpineSamples = want
		for n := 0; n < nodes; n++ {
			ref, err := agg.NodeEnergy(n, t0, t1)
			if err != nil {
				return StreamResult{}, fmt.Errorf("core: node %d rack-tier telemetry: %w", n, err)
			}
			got, err := spineAgg.NodeEnergy(n, t0, t1)
			if err != nil {
				return StreamResult{}, fmt.Errorf("core: node %d spine telemetry: %w", n, err)
			}
			if ref > 0 {
				if errPct := 100 * math.Abs(got-ref) / ref; errPct > res.SpineMaxEnergyErrPct {
					res.SpineMaxEnergyErrPct = errPct
				}
			}
		}
	}
	if si := s.obsSelfIngest(); si != nil {
		si.Record(t1)
	}
	res.WallClock = time.Since(start)
	return res, nil
}

// JobEnergyFromTelemetry recomputes one job's ETS from a telemetry replay
// of its interval (experiment E14's cross-check), returning telemetry and
// ledger values.
func (s *System) JobEnergyFromTelemetry(jobID int, sampleRate float64) (telemetryJ, ledgerJ float64, err error) {
	if s.lastResult == nil {
		return 0, 0, errors.New("core: no scheduled run yet")
	}
	rec, err := s.Ledger.Job(jobID)
	if err != nil {
		return 0, 0, err
	}
	nodes, ok := s.assignments[jobID]
	if !ok {
		return 0, 0, fmt.Errorf("core: job %d has no assignment", jobID)
	}
	broker, err := mqtt.NewBroker("127.0.0.1:0")
	if err != nil {
		return 0, 0, err
	}
	defer func() { _ = broker.Close() }()
	db := tsdb.New(s.StoreOptions)
	agg := telemetry.NewAggregatorOn(db)
	ingest, sub, err := agg.AttachParallel(broker.Addr(), "job-ea", 0)
	if err != nil {
		return 0, 0, err
	}
	defer ingest.Close()
	defer func() { _ = sub.Close() }()

	fl, err := fleet.New(broker.Addr(), fleet.GatewaySpec{
		SampleRate: sampleRate, ClientPrefix: "jgw", SeedBase: 2000,
		Codec: s.StreamCodec,
	}, s.StreamWorkers)
	if err != nil {
		return 0, 0, err
	}
	defer func() { _ = fl.Close() }()

	streams := make([]fleet.NodeStream, 0, len(nodes))
	for _, n := range nodes {
		streams = append(streams, fleet.NodeStream{Node: n, Signal: s.signals[n]})
	}
	if _, err := fl.Stream(context.Background(), streams, rec.StartAt, rec.EndAt, agg); err != nil {
		return 0, 0, err
	}
	s.store = db
	// Build the telemetry-derived ledger entry straight from the store's
	// query engine and compare its energy against the analytic record.
	tRec, err := accounting.RecordFromSource(db, rec.JobID, rec.User, rec.App,
		nodes, rec.StartAt, rec.EndAt)
	if err != nil {
		return 0, 0, err
	}
	return tRec.EnergyJ, rec.EnergyJ, nil
}
