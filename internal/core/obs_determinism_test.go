package core

import (
	"strings"
	"testing"

	"davide/internal/obs"
	"davide/internal/sched"
)

// runInstrumentedTiered executes one instrumented tiered replay from a
// fresh System and registry and returns the deterministic snapshot.
func runInstrumentedTiered(t *testing.T, racks int) string {
	t.Helper()
	s := newSystem(t)
	if _, err := s.RunScheduled(genJobs(t, 60, 11), sched.Config{Policy: sched.EASY}); err != nil {
		t.Fatal(err)
	}
	s.StreamRacks = racks
	s.Obs = obs.NewRegistry()
	if _, err := s.StreamWindow(0, 20, 50, 12); err != nil {
		t.Fatal(err)
	}
	return s.Obs.Text(false)
}

// TestObsSnapshotDeterministic is the registry's reproducibility
// contract: two replays of the same seeded window through the same rack
// partitioning must produce byte-identical deterministic snapshots —
// every counter, gauge and stage histogram included — regardless of
// goroutine scheduling (run under -race -shuffle=on in CI). Volatile
// series (pool reuse, queue high-water, live connections) are excluded
// by Text(false); everything else has to hold.
func TestObsSnapshotDeterministic(t *testing.T) {
	if testing.Short() {
		t.Skip("two full tiered replays")
	}
	a := runInstrumentedTiered(t, 3)
	b := runInstrumentedTiered(t, 3)
	if a == b {
		return
	}
	la, lb := strings.Split(a, "\n"), strings.Split(b, "\n")
	for i := 0; i < len(la) && i < len(lb); i++ {
		if la[i] != lb[i] {
			t.Fatalf("snapshots diverge at line %d:\n  run 1: %s\n  run 2: %s", i+1, la[i], lb[i])
		}
	}
	t.Fatalf("snapshots differ in length: %d vs %d lines", len(la), len(lb))
}

// TestObsSnapshotHasPipelineSeries pins the wiring: an instrumented
// tiered replay must publish the stage trace and every migrated
// counter family into the registry.
func TestObsSnapshotHasPipelineSeries(t *testing.T) {
	text := runInstrumentedTiered(t, 2)
	for _, want := range []string{
		`davide_stage_batches_total{stage="commit",rack="r01"}`,
		`davide_stage_lag_seconds_bucket{stage="encode",rack="r00",le="+Inf"}`,
		`davide_e2e_staleness_seconds_count{rack="r01"}`,
		`davide_fleet_samples_total{rack="r00"}`,
		`davide_broker_publishes_in_total{broker="r01"}`,
		`davide_broker_publishes_in_total{broker="spine"}`,
		`davide_bridge_forwarded_total{bridge="r00"}`,
		`davide_store_samples`,
		`davide_agg_dropped_total`,
	} {
		if !strings.Contains(text, want) {
			t.Errorf("snapshot missing %s", want)
		}
	}
	// Volatile series must stay out of the deterministic snapshot.
	for _, banned := range []string{"buf_reuses", "high_water", "davide_broker_connections"} {
		if strings.Contains(text, banned) {
			t.Errorf("deterministic snapshot leaks volatile series %q", banned)
		}
	}
}
