package core

import (
	"math"
	"testing"

	"davide/internal/sched"
	"davide/internal/workload"
)

func genJobs(t *testing.T, n int, seed int64) []workload.Job {
	t.Helper()
	g, err := workload.NewGenerator(workload.DefaultGeneratorConfig(seed))
	if err != nil {
		t.Fatal(err)
	}
	jobs, err := g.Batch(n)
	if err != nil {
		t.Fatal(err)
	}
	return jobs
}

func newSystem(t *testing.T) *System {
	t.Helper()
	s, err := NewSystem(genJobs(t, 800, 555))
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestNewSystem(t *testing.T) {
	s := newSystem(t)
	if s.Cluster.NodeCount() != 45 {
		t.Errorf("NodeCount = %d", s.Cluster.NodeCount())
	}
	if s.Predictor == nil {
		t.Error("predictor should be trained")
	}
	// Without training jobs there is no predictor, but the system works.
	s2, err := NewSystem(nil)
	if err != nil {
		t.Fatal(err)
	}
	if s2.Predictor != nil {
		t.Error("untrained system should have nil predictor")
	}
}

func TestRunScheduledFillsLedgerAndSignals(t *testing.T) {
	s := newSystem(t)
	jobs := genJobs(t, 120, 77)
	res, err := s.RunScheduled(jobs, sched.Config{Policy: sched.EASY})
	if err != nil {
		t.Fatal(err)
	}
	if s.Ledger.Len() != len(jobs) {
		t.Errorf("ledger has %d records, want %d", s.Ledger.Len(), len(jobs))
	}
	// Every job has an assignment of the right size, with no overlap in
	// time on the same node.
	type iv struct{ t0, t1 float64 }
	nodeIvs := map[int][]iv{}
	for _, j := range jobs {
		nodes := s.Assignments()[j.ID]
		if len(nodes) != j.Nodes {
			t.Fatalf("job %d assigned %d nodes, want %d", j.ID, len(nodes), j.Nodes)
		}
		for _, n := range nodes {
			nodeIvs[n] = append(nodeIvs[n], iv{res.Starts[j.ID], res.Ends[j.ID]})
		}
	}
	for n, ivs := range nodeIvs {
		for i := range ivs {
			for j := i + 1; j < len(ivs); j++ {
				a, b := ivs[i], ivs[j]
				if a.t0 < b.t1-1e-9 && b.t0 < a.t1-1e-9 {
					t.Fatalf("node %d double-booked: %+v vs %+v", n, a, b)
				}
			}
		}
	}
	// Node signals exist and integrate to plausible energies.
	sig, err := s.NodeSignal(0)
	if err != nil {
		t.Fatal(err)
	}
	e, err := sig.Energy(0, res.Makespan)
	if err != nil {
		t.Fatal(err)
	}
	if e <= 0 {
		t.Error("node 0 energy should be positive")
	}
	if _, err := s.NodeSignal(999); err == nil {
		t.Error("out-of-range node should error")
	}
}

func TestLedgerMatchesSignalEnergy(t *testing.T) {
	// Conservation: sum of per-job ledger energies + idle energy equals
	// the integral of all node signals.
	s := newSystem(t)
	jobs := genJobs(t, 60, 3)
	res, err := s.RunScheduled(jobs, sched.Config{Policy: sched.EASY})
	if err != nil {
		t.Fatal(err)
	}
	var sigTotal float64
	for n := 0; n < s.Cluster.NodeCount(); n++ {
		sig, err := s.NodeSignal(n)
		if err != nil {
			t.Fatal(err)
		}
		e, err := sig.Energy(0, res.Makespan)
		if err != nil {
			t.Fatal(err)
		}
		sigTotal += e
	}
	// Ledger energy counts job power above zero; signals include idle
	// power on all nodes at all times plus (job - idle) during jobs.
	idleTotal := s.IdleNodePowerW * float64(s.Cluster.NodeCount()) * res.Makespan
	var jobDyn float64
	for _, j := range jobs {
		rec, err := s.Ledger.Job(j.ID)
		if err != nil {
			t.Fatal(err)
		}
		jobDyn += rec.EnergyJ - s.IdleNodePowerW*float64(j.Nodes)*rec.Duration()
	}
	want := idleTotal + jobDyn
	if math.Abs(sigTotal-want) > 1e-6*want {
		t.Errorf("signal energy %v != ledger-derived %v", sigTotal, want)
	}
}

func TestRunScheduledConfigChecks(t *testing.T) {
	s := newSystem(t)
	jobs := genJobs(t, 10, 1)
	if _, err := s.RunScheduled(jobs, sched.Config{Nodes: 10}); err == nil {
		t.Error("mismatched node count should error")
	}
	if _, err := s.StreamWindow(0, 1, 100, 0); err == nil {
		t.Error("StreamWindow before run should error")
	}
	if _, _, err := s.JobEnergyFromTelemetry(0, 100); err == nil {
		t.Error("JobEnergyFromTelemetry before run should error")
	}
}

func TestProactiveCapUsesTrainedPredictor(t *testing.T) {
	s := newSystem(t)
	jobs := genJobs(t, 100, 12)
	cap := 45 * 1100.0
	res, err := s.RunScheduled(jobs, sched.Config{
		Policy: sched.EASY, PowerCapW: cap, ReactiveCapping: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	// The system auto-wires its predictor: policy must say proactive.
	if res.Policy != "EASY-backfill+proactive+reactive" {
		t.Errorf("policy = %q", res.Policy)
	}
	if res.CapViolationSec > 0.02*res.Makespan {
		t.Errorf("violations %v s over %v s makespan", res.CapViolationSec, res.Makespan)
	}
}

func TestStreamWindowEndToEnd(t *testing.T) {
	s := newSystem(t)
	jobs := genJobs(t, 40, 9)
	if _, err := s.RunScheduled(jobs, sched.Config{Policy: sched.EASY}); err != nil {
		t.Fatal(err)
	}
	// Stream 100 virtual seconds of 8 nodes at 50 S/s over real MQTT.
	res, err := s.StreamWindow(0, 100, 50, 8)
	if err != nil {
		t.Fatal(err)
	}
	if res.NodesStreamed != 8 {
		t.Errorf("NodesStreamed = %d", res.NodesStreamed)
	}
	if res.SamplesSent < 8*4990 {
		t.Errorf("SamplesSent = %d, want ~40000", res.SamplesSent)
	}
	if res.BrokerPublishes == 0 {
		t.Error("broker saw no publishes")
	}
	if res.MaxEnergyErrPct > 1.0 {
		t.Errorf("telemetry energy error = %v%%, want < 1%%", res.MaxEnergyErrPct)
	}
	if res.WallClock <= 0 {
		t.Error("wall clock not measured")
	}
	// The replay's samples live in the exposed compressed store and stay
	// queryable after the fact.
	db := s.Store()
	if db == nil {
		t.Fatal("Store() nil after StreamWindow")
	}
	st := db.Stats()
	if st.Nodes != 8 || st.Samples < 8*4990 {
		t.Errorf("store stats = %+v", st)
	}
	if st.BytesPerSample >= 16 {
		t.Errorf("store not compressing: %.1f B/sample", st.BytesPerSample)
	}
	e, err := db.Energy(0, 0, 100)
	if err != nil || e <= 0 {
		t.Errorf("post-hoc store energy = %v, %v", e, err)
	}
	pts, err := db.Fetch(0, 0, 100, 1)
	if err != nil || len(pts) == 0 {
		t.Errorf("post-hoc downsampled fetch = %d points, %v", len(pts), err)
	}
	// Parameter validation.
	if _, err := s.StreamWindow(10, 10, 50, 1); err == nil {
		t.Error("empty window should error")
	}
	if _, err := s.StreamWindow(0, 1, 0, 1); err == nil {
		t.Error("zero rate should error")
	}
}

func TestJobEnergyFromTelemetry(t *testing.T) {
	s := newSystem(t)
	jobs := genJobs(t, 30, 4)
	if _, err := s.RunScheduled(jobs, sched.Config{Policy: sched.EASY}); err != nil {
		t.Fatal(err)
	}
	// Pick a short job to keep the replay quick.
	best, bestDur := -1, math.Inf(1)
	for _, j := range jobs {
		rec, err := s.Ledger.Job(j.ID)
		if err != nil {
			t.Fatal(err)
		}
		if d := rec.Duration(); d < bestDur {
			best, bestDur = j.ID, d
		}
	}
	tele, ledger, err := s.JobEnergyFromTelemetry(best, 20)
	if err != nil {
		t.Fatal(err)
	}
	if ledger <= 0 {
		t.Fatal("ledger energy missing")
	}
	if math.Abs(tele-ledger)/ledger > 0.02 {
		t.Errorf("telemetry ETS %v deviates from ledger %v by >2%%", tele, ledger)
	}
	if _, _, err := s.JobEnergyFromTelemetry(99999, 20); err == nil {
		t.Error("unknown job should error")
	}
}

func TestAssignNodesTieBreak(t *testing.T) {
	// Job 2 starts exactly when job 1 ends on a cluster that only has
	// enough nodes if the completion is processed before the start.
	jobs := []workload.Job{
		{ID: 1, Nodes: 2},
		{ID: 2, Nodes: 2},
	}
	res := &sched.Result{
		Starts: map[int]float64{1: 0, 2: 10},
		Ends:   map[int]float64{1: 10, 2: 20},
	}
	out, err := assignNodes(jobs, res, 2)
	if err != nil {
		t.Fatalf("equal-timestamp handover failed: %v", err)
	}
	if len(out[1]) != 2 || len(out[2]) != 2 {
		t.Errorf("assignments = %v", out)
	}
}

func TestAssignNodesErrors(t *testing.T) {
	jobs := []workload.Job{{ID: 1, Nodes: 1}}
	if _, err := assignNodes(jobs, &sched.Result{
		Starts: map[int]float64{}, Ends: map[int]float64{},
	}, 4); err == nil {
		t.Error("job missing from schedule should error")
	}
	// Overlapping jobs that exceed capacity cannot be replayed.
	jobs = []workload.Job{{ID: 1, Nodes: 2}, {ID: 2, Nodes: 2}}
	res := &sched.Result{
		Starts: map[int]float64{1: 0, 2: 5},
		Ends:   map[int]float64{1: 10, 2: 15},
	}
	if _, err := assignNodes(jobs, res, 2); err == nil {
		t.Error("capacity overflow should error")
	}
}

func TestStreamWindowErrorPaths(t *testing.T) {
	fresh, err := NewSystem(nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := fresh.StreamWindow(0, 1, 50, 1); err == nil {
		t.Error("no prior run should error")
	}
	s := newSystem(t)
	if _, err := s.RunScheduled(genJobs(t, 20, 2), sched.Config{Policy: sched.EASY}); err != nil {
		t.Fatal(err)
	}
	if _, err := s.StreamWindow(5, 5, 50, 1); err == nil {
		t.Error("empty window should error")
	}
	if _, err := s.StreamWindow(6, 5, 50, 1); err == nil {
		t.Error("inverted window should error")
	}
	if _, err := s.StreamWindow(0, 1, 0, 1); err == nil {
		t.Error("zero sample rate should error")
	}
	if _, err := s.StreamWindow(0, 1, -50, 1); err == nil {
		t.Error("negative sample rate should error")
	}
}

func TestStreamWindowConcurrencyInvariant(t *testing.T) {
	// The concurrent fleet must publish exactly what the sequential
	// replay publishes, with the same telemetry accuracy: per-node
	// monitor seeds are fixed by node ID, not by worker order.
	s := newSystem(t)
	if _, err := s.RunScheduled(genJobs(t, 40, 9), sched.Config{Policy: sched.EASY}); err != nil {
		t.Fatal(err)
	}
	s.StreamWorkers = 1
	seq, err := s.StreamWindow(0, 50, 40, 6)
	if err != nil {
		t.Fatal(err)
	}
	s.StreamWorkers = 6
	conc, err := s.StreamWindow(0, 50, 40, 6)
	if err != nil {
		t.Fatal(err)
	}
	if seq.SamplesSent != conc.SamplesSent || seq.BatchesSent != conc.BatchesSent {
		t.Errorf("sequential %d/%d != concurrent %d/%d samples/batches",
			seq.SamplesSent, seq.BatchesSent, conc.SamplesSent, conc.BatchesSent)
	}
	if math.Abs(seq.MaxEnergyErrPct-conc.MaxEnergyErrPct) > 1e-9 {
		t.Errorf("energy error drifted: seq %v%%, conc %v%%",
			seq.MaxEnergyErrPct, conc.MaxEnergyErrPct)
	}
	if len(conc.PerNode) != 6 {
		t.Errorf("PerNode = %d entries, want 6", len(conc.PerNode))
	}
	for _, ns := range conc.PerNode {
		if !ns.Delivered {
			t.Errorf("node %d not confirmed delivered", ns.Node)
		}
	}
}
