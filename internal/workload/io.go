package workload

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
)

// jobJSON is the stable on-disk form of a Job (the trace format the
// paper's management node records for predictor training).
type jobJSON struct {
	ID        int     `json:"id"`
	User      int     `json:"user"`
	App       string  `json:"app"`
	Nodes     int     `json:"nodes"`
	SubmitAt  float64 `json:"submit_at"`
	WallLimit float64 `json:"wall_limit"`
	Duration  float64 `json:"duration"`
	PowerW    float64 `json:"power_per_node_w"`
}

// appByName maps the stable names back to kinds.
func appByName(name string) (AppKind, error) {
	for k := AppKind(0); k < numAppKinds; k++ {
		if k.String() == name {
			return k, nil
		}
	}
	return 0, fmt.Errorf("workload: unknown app %q", name)
}

// WriteJobs serialises a job trace as JSON.
func WriteJobs(w io.Writer, jobs []Job) error {
	if len(jobs) == 0 {
		return errors.New("workload: no jobs to write")
	}
	out := make([]jobJSON, len(jobs))
	for i, j := range jobs {
		if err := j.Validate(); err != nil {
			return fmt.Errorf("workload: job %d: %w", j.ID, err)
		}
		out[i] = jobJSON{
			ID: j.ID, User: j.User, App: j.App.String(), Nodes: j.Nodes,
			SubmitAt: j.SubmitAt, WallLimit: j.WallLimit,
			Duration: j.Duration, PowerW: j.TruePowerPerNode,
		}
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	return enc.Encode(out)
}

// ReadJobs parses a JSON job trace, validating every record and the
// submission-time ordering.
func ReadJobs(r io.Reader) ([]Job, error) {
	var raw []jobJSON
	if err := json.NewDecoder(r).Decode(&raw); err != nil {
		return nil, fmt.Errorf("workload: decode: %w", err)
	}
	if len(raw) == 0 {
		return nil, errors.New("workload: empty trace")
	}
	out := make([]Job, len(raw))
	for i, jj := range raw {
		app, err := appByName(jj.App)
		if err != nil {
			return nil, err
		}
		j := Job{
			ID: jj.ID, User: jj.User, App: app, Nodes: jj.Nodes,
			SubmitAt: jj.SubmitAt, WallLimit: jj.WallLimit,
			Duration: jj.Duration, TruePowerPerNode: jj.PowerW,
		}
		if err := j.Validate(); err != nil {
			return nil, fmt.Errorf("workload: record %d: %w", i, err)
		}
		if i > 0 && j.SubmitAt < out[i-1].SubmitAt {
			return nil, errors.New("workload: trace not sorted by submit time")
		}
		out[i] = j
	}
	return out, nil
}
