// Package workload models the job stream of the D.A.V.I.D.E. pilot: the
// four applications of European interest from §IV of the paper (Quantum
// ESPRESSO, NEMO, SPECFEM3D, BQCD) plus a generic filler class, a user
// population with per-user habits, Poisson arrivals and log-normal service
// times. The generator substitutes for the historical CINECA traces the
// paper's machine-learning power predictors would train on: each job's true
// mean power is a deterministic function of its submission-time features
// plus noise, which is exactly the structure those predictors exploit
// (refs [17][18] of the paper).
package workload

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
)

// AppKind identifies an application class.
type AppKind int

// Application classes from §IV of the paper.
const (
	QuantumESPRESSO AppKind = iota // FFT-heavy, GPU-bound, NVLink-sensitive
	NEMO                           // stencil, memory-bound, flat profile
	SPECFEM3D                      // spectral elements, GPU, overlap-friendly
	BQCD                           // lattice QCD CG, comm-sensitive
	Generic                        // everything else in the queue
	numAppKinds
)

// String names the application.
func (a AppKind) String() string {
	switch a {
	case QuantumESPRESSO:
		return "QuantumESPRESSO"
	case NEMO:
		return "NEMO"
	case SPECFEM3D:
		return "SPECFEM3D"
	case BQCD:
		return "BQCD"
	case Generic:
		return "Generic"
	default:
		return fmt.Sprintf("AppKind(%d)", int(a))
	}
}

// AppProfile captures how an application class loads a node.
type AppProfile struct {
	Kind AppKind
	// CPUUtil / GPUUtil / MemUtil are the mean component utilisations
	// while the job runs.
	CPUUtil, GPUUtil, MemUtil float64
	// PowerPerNode is the resulting mean node power draw in watts on a
	// Garrison node (derived from the node model; kept here so the
	// predictor's ground truth is self-contained).
	PowerPerNode float64
	// PowerSpread is the relative run-to-run variation of that power.
	PowerSpread float64
	// PhasePeriod/PhaseDuty describe the power phase structure (compute
	// vs communication) for the high-rate monitoring experiments.
	PhasePeriod float64
	PhaseDuty   float64
}

// Profile returns the built-in profile of an application class.
func Profile(kind AppKind) (AppProfile, error) {
	switch kind {
	case QuantumESPRESSO:
		// GPU-localised FFT: high GPU, moderate CPU, bursty phases.
		return AppProfile{Kind: kind, CPUUtil: 0.45, GPUUtil: 0.95, MemUtil: 0.6,
			PowerPerNode: 1750, PowerSpread: 0.06, PhasePeriod: 0.8, PhaseDuty: 0.7}, nil
	case NEMO:
		// Memory-bound stencil, CPU-dominated (GPU port immature), flat.
		return AppProfile{Kind: kind, CPUUtil: 0.85, GPUUtil: 0.25, MemUtil: 0.95,
			PowerPerNode: 1050, PowerSpread: 0.04, PhasePeriod: 4.0, PhaseDuty: 0.9}, nil
	case SPECFEM3D:
		// GPU-heavy with neat comm overlap: steady high draw.
		return AppProfile{Kind: kind, CPUUtil: 0.35, GPUUtil: 0.9, MemUtil: 0.55,
			PowerPerNode: 1680, PowerSpread: 0.05, PhasePeriod: 2.0, PhaseDuty: 0.85}, nil
	case BQCD:
		// CG solver with halo exchanges: pronounced compute/comm phases.
		return AppProfile{Kind: kind, CPUUtil: 0.5, GPUUtil: 0.85, MemUtil: 0.7,
			PowerPerNode: 1550, PowerSpread: 0.07, PhasePeriod: 0.25, PhaseDuty: 0.6}, nil
	case Generic:
		return AppProfile{Kind: kind, CPUUtil: 0.6, GPUUtil: 0.4, MemUtil: 0.5,
			PowerPerNode: 1100, PowerSpread: 0.12, PhasePeriod: 1.5, PhaseDuty: 0.75}, nil
	default:
		return AppProfile{}, fmt.Errorf("workload: unknown app kind %d", int(kind))
	}
}

// Job is one batch job as the scheduler sees it.
type Job struct {
	ID        int
	User      int
	App       AppKind
	Nodes     int     // requested node count
	SubmitAt  float64 // submission time, seconds
	WallLimit float64 // user-requested wall-clock limit, seconds
	Duration  float64 // actual runtime, seconds (hidden from scheduler)
	// TruePowerPerNode is the job's actual mean node power draw in watts
	// (hidden from the scheduler; predictors estimate it).
	TruePowerPerNode float64
}

// Validate reports whether the job is well-formed.
func (j Job) Validate() error {
	switch {
	case j.Nodes <= 0:
		return errors.New("workload: job needs at least one node")
	case j.WallLimit <= 0:
		return errors.New("workload: non-positive wall limit")
	case j.Duration <= 0 || j.Duration > j.WallLimit:
		return fmt.Errorf("workload: duration %g outside (0, wall %g]", j.Duration, j.WallLimit)
	case j.TruePowerPerNode <= 0:
		return errors.New("workload: non-positive power")
	case j.SubmitAt < 0:
		return errors.New("workload: negative submit time")
	}
	return nil
}

// TotalPower returns the job's mean power across all its nodes.
func (j Job) TotalPower() float64 { return j.TruePowerPerNode * float64(j.Nodes) }

// Features returns the submission-time feature vector used by the power
// predictors: everything here is known before the job starts (paper refs
// [17][18]): app class one-hot, requested nodes, requested wall time, and
// the user's identity bucket.
func (j Job) Features() []float64 {
	f := make([]float64, 0, int(numAppKinds)+3)
	for k := AppKind(0); k < numAppKinds; k++ {
		if j.App == k {
			f = append(f, 1)
		} else {
			f = append(f, 0)
		}
	}
	f = append(f, float64(j.Nodes))
	f = append(f, j.WallLimit/3600) // hours
	f = append(f, float64(j.User%16))
	return f
}

// GeneratorConfig tunes the synthetic trace.
type GeneratorConfig struct {
	Seed int64
	// Users in the population.
	Users int
	// MeanInterarrival between submissions, seconds.
	MeanInterarrival float64
	// MaxNodes a job may request.
	MaxNodes int
	// MeanRuntime and RuntimeSigma parameterise the log-normal service
	// time (sigma in log space).
	MeanRuntime  float64
	RuntimeSigma float64
	// AppMix weights the application classes; nil = default mix.
	AppMix []float64
	// WallFactorMax: users request up to this multiple of actual runtime.
	WallFactorMax float64
}

// DefaultGeneratorConfig returns a pilot-like workload: 32 users, jobs of
// 1-8 nodes, ~45 minute mean runtime.
func DefaultGeneratorConfig(seed int64) GeneratorConfig {
	return GeneratorConfig{
		Seed:             seed,
		Users:            32,
		MeanInterarrival: 180,
		MaxNodes:         8,
		MeanRuntime:      2700,
		RuntimeSigma:     0.9,
		AppMix:           []float64{0.22, 0.18, 0.15, 0.15, 0.30},
		WallFactorMax:    3.0,
	}
}

// Validate reports whether the generator configuration is usable.
func (c GeneratorConfig) Validate() error {
	switch {
	case c.Users <= 0:
		return errors.New("workload: need at least one user")
	case c.MeanInterarrival <= 0:
		return errors.New("workload: non-positive interarrival")
	case c.MaxNodes <= 0:
		return errors.New("workload: non-positive max nodes")
	case c.MeanRuntime <= 0 || c.RuntimeSigma <= 0:
		return errors.New("workload: invalid runtime distribution")
	case c.WallFactorMax < 1:
		return errors.New("workload: wall factor must be >= 1")
	}
	if c.AppMix != nil {
		if len(c.AppMix) != int(numAppKinds) {
			return fmt.Errorf("workload: app mix needs %d weights", int(numAppKinds))
		}
		s := 0.0
		for _, w := range c.AppMix {
			if w < 0 {
				return errors.New("workload: negative app weight")
			}
			s += w
		}
		if s <= 0 {
			return errors.New("workload: zero total app weight")
		}
	}
	return nil
}

// Generator produces a deterministic synthetic job trace.
type Generator struct {
	cfg  GeneratorConfig
	rng  *rand.Rand
	next int // next job ID
	now  float64
	// userBias gives each user a personal power factor (some users run
	// better-optimised inputs): part of the learnable structure.
	userBias []float64
	// userApps biases each user towards a home application.
	userApps []AppKind
}

// NewGenerator creates a generator.
func NewGenerator(cfg GeneratorConfig) (*Generator, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	g := &Generator{cfg: cfg, rng: rng}
	for u := 0; u < cfg.Users; u++ {
		g.userBias = append(g.userBias, 0.85+0.3*rng.Float64())
		g.userApps = append(g.userApps, g.sampleApp())
	}
	return g, nil
}

// sampleApp draws an application class from the mix.
func (g *Generator) sampleApp() AppKind {
	mix := g.cfg.AppMix
	if mix == nil {
		mix = DefaultGeneratorConfig(0).AppMix
	}
	total := 0.0
	for _, w := range mix {
		total += w
	}
	x := g.rng.Float64() * total
	for k, w := range mix {
		x -= w
		if x < 0 {
			return AppKind(k)
		}
	}
	return Generic
}

// Next generates the next job in submission order.
func (g *Generator) Next() Job {
	g.now += g.rng.ExpFloat64() * g.cfg.MeanInterarrival
	user := g.rng.Intn(g.cfg.Users)
	app := g.sampleApp()
	// 60% of the time a user runs their home application.
	if g.rng.Float64() < 0.6 {
		app = g.userApps[user]
	}
	prof, err := Profile(app)
	if err != nil {
		prof, _ = Profile(Generic)
	}
	// Log-normal runtime around the configured mean.
	mu := math.Log(g.cfg.MeanRuntime) - g.cfg.RuntimeSigma*g.cfg.RuntimeSigma/2
	dur := math.Exp(mu + g.cfg.RuntimeSigma*g.rng.NormFloat64())
	if dur < 60 {
		dur = 60
	}
	wall := dur * (1 + g.rng.Float64()*(g.cfg.WallFactorMax-1))
	nodes := 1 + g.rng.Intn(g.cfg.MaxNodes)
	// True power: profile mean x user bias x mild node-count economy
	// (larger jobs spend more time communicating) + noise.
	nodeEconomy := 1 - 0.02*math.Min(float64(nodes-1), 8)
	power := prof.PowerPerNode * g.userBias[user] * nodeEconomy *
		(1 + prof.PowerSpread*g.rng.NormFloat64())
	if power < 400 {
		power = 400
	}
	j := Job{
		ID:               g.next,
		User:             user,
		App:              app,
		Nodes:            nodes,
		SubmitAt:         g.now,
		WallLimit:        wall,
		Duration:         dur,
		TruePowerPerNode: power,
	}
	g.next++
	return j
}

// Batch generates n jobs in submission order.
func (g *Generator) Batch(n int) ([]Job, error) {
	if n <= 0 {
		return nil, errors.New("workload: batch size must be positive")
	}
	out := make([]Job, 0, n)
	for i := 0; i < n; i++ {
		out = append(out, g.Next())
	}
	return out, nil
}
