package workload

import (
	"bytes"
	"strings"
	"testing"
)

func TestJobsJSONRoundTrip(t *testing.T) {
	g, err := NewGenerator(DefaultGeneratorConfig(17))
	if err != nil {
		t.Fatal(err)
	}
	jobs, err := g.Batch(100)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteJobs(&buf, jobs); err != nil {
		t.Fatal(err)
	}
	got, err := ReadJobs(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(jobs) {
		t.Fatalf("len = %d", len(got))
	}
	for i := range jobs {
		if got[i] != jobs[i] {
			t.Fatalf("job %d: %+v != %+v", i, got[i], jobs[i])
		}
	}
}

func TestWriteJobsErrors(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteJobs(&buf, nil); err == nil {
		t.Error("empty trace should error")
	}
	bad := []Job{{ID: 1, Nodes: 0, WallLimit: 1, Duration: 1, TruePowerPerNode: 1}}
	if err := WriteJobs(&buf, bad); err == nil {
		t.Error("invalid job should error")
	}
}

func TestReadJobsErrors(t *testing.T) {
	cases := []string{
		"not json",
		"[]",
		`[{"id":1,"app":"NoSuchApp","nodes":1,"wall_limit":10,"duration":5,"power_per_node_w":100}]`,
		`[{"id":1,"app":"NEMO","nodes":0,"wall_limit":10,"duration":5,"power_per_node_w":100}]`,
		`[{"id":1,"app":"NEMO","nodes":1,"submit_at":100,"wall_limit":10,"duration":5,"power_per_node_w":100},
		  {"id":2,"app":"NEMO","nodes":1,"submit_at":50,"wall_limit":10,"duration":5,"power_per_node_w":100}]`,
	}
	for i, c := range cases {
		if _, err := ReadJobs(strings.NewReader(c)); err == nil {
			t.Errorf("case %d should error", i)
		}
	}
}

func TestAppByNameCoversAllKinds(t *testing.T) {
	for k := AppKind(0); k < numAppKinds; k++ {
		got, err := appByName(k.String())
		if err != nil || got != k {
			t.Errorf("appByName(%q) = %v,%v", k.String(), got, err)
		}
	}
}
