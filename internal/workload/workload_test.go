package workload

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func TestAppKindString(t *testing.T) {
	for k := AppKind(0); k < numAppKinds; k++ {
		if s := k.String(); s == "" || strings.Contains(s, "AppKind(") {
			t.Errorf("kind %d has bad name %q", k, s)
		}
	}
	if !strings.Contains(AppKind(99).String(), "99") {
		t.Error("unknown kind should include number")
	}
}

func TestProfiles(t *testing.T) {
	for k := AppKind(0); k < numAppKinds; k++ {
		p, err := Profile(k)
		if err != nil {
			t.Fatalf("%v: %v", k, err)
		}
		if p.Kind != k {
			t.Errorf("%v: profile kind mismatch", k)
		}
		if p.PowerPerNode <= 0 || p.PowerPerNode > 2000 {
			t.Errorf("%v: power %v outside node envelope", k, p.PowerPerNode)
		}
		if p.CPUUtil < 0 || p.CPUUtil > 1 || p.GPUUtil < 0 || p.GPUUtil > 1 {
			t.Errorf("%v: utilisations out of range", k)
		}
		if p.PhaseDuty <= 0 || p.PhaseDuty >= 1 || p.PhasePeriod <= 0 {
			t.Errorf("%v: bad phase structure", k)
		}
	}
	if _, err := Profile(AppKind(42)); err == nil {
		t.Error("unknown profile should error")
	}
}

func TestProfileRelationshipsMatchPaper(t *testing.T) {
	qe, _ := Profile(QuantumESPRESSO)
	nemo, _ := Profile(NEMO)
	bqcd, _ := Profile(BQCD)
	// NEMO is memory-bound CPU code: highest memory, lowest GPU of the
	// three; QE is GPU/FFT-bound: highest GPU utilisation.
	if nemo.MemUtil <= qe.MemUtil {
		t.Error("NEMO should be the most memory-bound")
	}
	if qe.GPUUtil < nemo.GPUUtil || qe.GPUUtil < 0.9 {
		t.Error("QE should be GPU-dominated")
	}
	// BQCD's CG phases are the shortest — the aliasing stressor.
	if bqcd.PhasePeriod >= qe.PhasePeriod || bqcd.PhasePeriod >= nemo.PhasePeriod {
		t.Error("BQCD should have the fastest phase alternation")
	}
	// GPU-heavy codes draw more power than the CPU stencil.
	if qe.PowerPerNode <= nemo.PowerPerNode {
		t.Error("QE node power should exceed NEMO's")
	}
}

func TestJobValidate(t *testing.T) {
	good := Job{ID: 1, Nodes: 2, SubmitAt: 0, WallLimit: 100, Duration: 50, TruePowerPerNode: 1500}
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	mut := []func(*Job){
		func(j *Job) { j.Nodes = 0 },
		func(j *Job) { j.WallLimit = 0 },
		func(j *Job) { j.Duration = 0 },
		func(j *Job) { j.Duration = j.WallLimit + 1 },
		func(j *Job) { j.TruePowerPerNode = 0 },
		func(j *Job) { j.SubmitAt = -1 },
	}
	for i, m := range mut {
		j := good
		m(&j)
		if err := j.Validate(); err == nil {
			t.Errorf("mutation %d should fail", i)
		}
	}
}

func TestTotalPower(t *testing.T) {
	j := Job{Nodes: 4, TruePowerPerNode: 1500}
	if j.TotalPower() != 6000 {
		t.Errorf("TotalPower = %v", j.TotalPower())
	}
}

func TestFeaturesShapeAndOneHot(t *testing.T) {
	j := Job{ID: 1, User: 21, App: NEMO, Nodes: 4, WallLimit: 7200, Duration: 100, TruePowerPerNode: 1000}
	f := j.Features()
	wantLen := int(numAppKinds) + 3
	if len(f) != wantLen {
		t.Fatalf("features len = %d, want %d", len(f), wantLen)
	}
	ones := 0
	for k := 0; k < int(numAppKinds); k++ {
		if f[k] == 1 {
			ones++
			if AppKind(k) != NEMO {
				t.Error("one-hot on wrong app")
			}
		} else if f[k] != 0 {
			t.Error("one-hot entries must be 0/1")
		}
	}
	if ones != 1 {
		t.Errorf("one-hot count = %d", ones)
	}
	if f[int(numAppKinds)] != 4 {
		t.Error("nodes feature wrong")
	}
	if f[int(numAppKinds)+1] != 2 { // 7200 s = 2 h
		t.Error("wall-hours feature wrong")
	}
	if f[int(numAppKinds)+2] != float64(21%16) {
		t.Error("user bucket feature wrong")
	}
}

func TestGeneratorConfigValidation(t *testing.T) {
	good := DefaultGeneratorConfig(1)
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	mut := []func(*GeneratorConfig){
		func(c *GeneratorConfig) { c.Users = 0 },
		func(c *GeneratorConfig) { c.MeanInterarrival = 0 },
		func(c *GeneratorConfig) { c.MaxNodes = 0 },
		func(c *GeneratorConfig) { c.MeanRuntime = 0 },
		func(c *GeneratorConfig) { c.RuntimeSigma = 0 },
		func(c *GeneratorConfig) { c.WallFactorMax = 0.5 },
		func(c *GeneratorConfig) { c.AppMix = []float64{1} },
		func(c *GeneratorConfig) { c.AppMix = []float64{-1, 1, 1, 1, 1} },
		func(c *GeneratorConfig) { c.AppMix = []float64{0, 0, 0, 0, 0} },
	}
	for i, m := range mut {
		c := good
		m(&c)
		if err := c.Validate(); err == nil {
			t.Errorf("mutation %d should fail", i)
		}
		if _, err := NewGenerator(c); err == nil {
			t.Errorf("NewGenerator with mutation %d should fail", i)
		}
	}
}

func TestGeneratorDeterminism(t *testing.T) {
	g1, err := NewGenerator(DefaultGeneratorConfig(42))
	if err != nil {
		t.Fatal(err)
	}
	g2, err := NewGenerator(DefaultGeneratorConfig(42))
	if err != nil {
		t.Fatal(err)
	}
	b1, err := g1.Batch(50)
	if err != nil {
		t.Fatal(err)
	}
	b2, err := g2.Batch(50)
	if err != nil {
		t.Fatal(err)
	}
	for i := range b1 {
		if b1[i] != b2[i] {
			t.Fatalf("job %d differs between same-seed runs", i)
		}
	}
	g3, _ := NewGenerator(DefaultGeneratorConfig(43))
	b3, _ := g3.Batch(50)
	same := true
	for i := range b1 {
		if b1[i] != b3[i] {
			same = false
			break
		}
	}
	if same {
		t.Error("different seeds should differ")
	}
}

func TestGeneratedJobsValid(t *testing.T) {
	g, err := NewGenerator(DefaultGeneratorConfig(7))
	if err != nil {
		t.Fatal(err)
	}
	jobs, err := g.Batch(500)
	if err != nil {
		t.Fatal(err)
	}
	lastSubmit := -1.0
	ids := map[int]bool{}
	for _, j := range jobs {
		if err := j.Validate(); err != nil {
			t.Fatalf("job %d invalid: %v", j.ID, err)
		}
		if j.SubmitAt < lastSubmit {
			t.Fatal("submissions must be time-ordered")
		}
		lastSubmit = j.SubmitAt
		if ids[j.ID] {
			t.Fatalf("duplicate job ID %d", j.ID)
		}
		ids[j.ID] = true
		if j.Nodes > DefaultGeneratorConfig(7).MaxNodes {
			t.Fatalf("job %d requests too many nodes", j.ID)
		}
	}
}

func TestGeneratedMixRoughlyMatchesWeights(t *testing.T) {
	g, err := NewGenerator(DefaultGeneratorConfig(11))
	if err != nil {
		t.Fatal(err)
	}
	jobs, err := g.Batch(3000)
	if err != nil {
		t.Fatal(err)
	}
	counts := map[AppKind]int{}
	for _, j := range jobs {
		counts[j.App]++
	}
	for k := AppKind(0); k < numAppKinds; k++ {
		if counts[k] == 0 {
			t.Errorf("app %v never generated", k)
		}
	}
	// Generic carries the largest weight.
	if counts[Generic] < counts[SPECFEM3D] {
		t.Error("mix weights not respected")
	}
}

func TestPowerStructureLearnable(t *testing.T) {
	// Same user + same app should have much lower power variance than the
	// population at large: this is the structure predictors exploit.
	g, err := NewGenerator(DefaultGeneratorConfig(13))
	if err != nil {
		t.Fatal(err)
	}
	jobs, err := g.Batch(5000)
	if err != nil {
		t.Fatal(err)
	}
	var all []float64
	groups := map[[2]int][]float64{}
	for _, j := range jobs {
		all = append(all, j.TruePowerPerNode)
		key := [2]int{j.User, int(j.App)}
		groups[key] = append(groups[key], j.TruePowerPerNode)
	}
	variance := func(xs []float64) float64 {
		m := 0.0
		for _, x := range xs {
			m += x
		}
		m /= float64(len(xs))
		v := 0.0
		for _, x := range xs {
			v += (x - m) * (x - m)
		}
		return v / float64(len(xs))
	}
	popVar := variance(all)
	var within, n float64
	for _, xs := range groups {
		if len(xs) >= 5 {
			within += variance(xs) * float64(len(xs))
			n += float64(len(xs))
		}
	}
	within /= n
	if within >= popVar/2 {
		t.Errorf("within-group variance %v should be far below population %v", within, popVar)
	}
}

func TestBatchErrors(t *testing.T) {
	g, err := NewGenerator(DefaultGeneratorConfig(1))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := g.Batch(0); err == nil {
		t.Error("zero batch should error")
	}
	if _, err := g.Batch(-1); err == nil {
		t.Error("negative batch should error")
	}
}

// Property: every generated job respects the node-power envelope of a
// Garrison node (≤ ~2 kW per node).
func TestGeneratedPowerEnvelopeProperty(t *testing.T) {
	f := func(seed int64) bool {
		g, err := NewGenerator(DefaultGeneratorConfig(seed))
		if err != nil {
			return false
		}
		jobs, err := g.Batch(100)
		if err != nil {
			return false
		}
		for _, j := range jobs {
			if j.TruePowerPerNode < 400 || j.TruePowerPerNode > 2400 {
				return false
			}
			if math.IsNaN(j.TruePowerPerNode) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}
