package scenario

import (
	"errors"
	"fmt"
)

// Post-hoc cap tracking: replay the scenario's cap trajectory against
// the measured rack power left behind in the tsdb and report how well
// the machine held the moving cap, per report phase. This is the
// `egmon -cap-track` query — it needs only the store, not the run's
// in-memory controller, so it works on any telemetry the plane kept.

// PowerSource is the slice of the telemetry store CapTrack reads
// (tsdb.DB satisfies it).
type PowerSource interface {
	MeanPower(node int, t0, t1 float64) (float64, error)
}

// PhaseOvershoot reports one report phase's cap tracking.
type PhaseOvershoot struct {
	Phase  string
	T0, T1 float64
	// Ticks is the number of tick windows scored in the phase;
	// OverTicks how many of them had measured power above the tracked
	// cap.
	Ticks     int
	OverTicks int
	// MaxOverW / MaxOverPct are the worst overshoot above the tracked
	// cap (percent relative to the cap of that moment); MeanOverW is
	// the mean positive overshoot over all phase ticks.
	MaxOverW   float64
	MaxOverPct float64
	MeanOverW  float64
	// MeanCapW is the mean tracked cap across the phase — the overlay
	// baseline.
	MeanCapW float64
	// MeanPowerW is the mean measured machine power across the phase.
	MeanPowerW float64
}

// CapTrack reconstructs the ramp-limited effective-cap trajectory the
// controller tracked (same rate limit, same tick grid) and scores the
// measured machine power from the store against it, per report phase.
// Nodes whose window has no data simply contribute nothing — CapTrack
// is a post-hoc query and must work on lossy telemetry.
func CapTrack(src PowerSource, nodes int, nominalCapW, tickS, horizon float64, sc *Scenario) ([]PhaseOvershoot, error) {
	if src == nil {
		return nil, errors.New("scenario: nil power source")
	}
	if nodes <= 0 || nominalCapW <= 0 || tickS <= 0 || horizon <= 0 {
		return nil, fmt.Errorf("scenario: cap-track needs positive nodes/cap/tick/horizon (got %d/%g/%g/%g)",
			nodes, nominalCapW, tickS, horizon)
	}
	phases := sc.ReportPhases(horizon)
	out := make([]PhaseOvershoot, len(phases))
	for i, ph := range phases {
		out[i] = PhaseOvershoot{Phase: ph.Name, T0: ph.T0, T1: ph.T1}
	}

	capNow := nominalCapW
	for t0 := 0.0; t0 < horizon; t0 += tickS {
		// Same tracker the controller runs: target, then rate-limit.
		target := nominalCapW * sc.Cap.FracAt(t0)
		if sc.RampWPerS > 0 {
			maxStep := sc.RampWPerS * tickS
			switch d := target - capNow; {
			case d > maxStep:
				capNow += maxStep
			case d < -maxStep:
				capNow -= maxStep
			default:
				capNow = target
			}
		} else {
			capNow = target
		}

		t1 := t0 + tickS
		measured := 0.0
		for n := 0; n < nodes; n++ {
			if v, err := src.MeanPower(n, t0, t1); err == nil {
				measured += v
			}
		}
		if measured == 0 {
			continue // nothing stored for this window at all
		}
		over := measured - capNow
		for i := range out {
			if t0 < out[i].T0 || t0 >= out[i].T1 {
				continue
			}
			o := &out[i]
			o.Ticks++
			o.MeanCapW += capNow
			o.MeanPowerW += measured
			if over > 0 {
				o.OverTicks++
				o.MeanOverW += over
				if over > o.MaxOverW {
					o.MaxOverW = over
					o.MaxOverPct = 100 * over / capNow
				}
			}
		}
	}
	for i := range out {
		if out[i].Ticks > 0 {
			out[i].MeanCapW /= float64(out[i].Ticks)
			out[i].MeanPowerW /= float64(out[i].Ticks)
			out[i].MeanOverW /= float64(out[i].Ticks)
		}
	}
	return out, nil
}
