package scenario

import (
	"fmt"
	"sort"

	"davide/internal/fleet"
)

// The named scenario registry: every entry is a fully specified,
// documented stress configuration with the degradation bound the E22
// matrix asserts (MaxOverPct against the tracked cap for power-aware
// runs, MaxEnergyErrPct for measured-vs-true energy). Names are what
// `davide-sim -scenario <name>` and the E22 bench iterate; a scenario
// cannot be registered without declaring its bounds, mirroring the
// chaos-preset registry discipline.

// Scenario names.
const (
	// ScenarioDiurnal reshapes arrivals with a day-cycle sinusoid; cap
	// static. Baseline for the arrival generators.
	ScenarioDiurnal = "diurnal"
	// ScenarioMMPPBurst packs a 2.8×-rate burst into the last quarter
	// of each period over a quiet 0.4× floor.
	ScenarioMMPPBurst = "mmpp-burst"
	// ScenarioWeekendLull alternates busy and near-idle half-periods.
	ScenarioWeekendLull = "weekend-lull"
	// ScenarioDRRamp is a demand-response event: the grid asks for a
	// 20% shed mid-run and the controller ramps the effective cap down
	// and back at a bounded rate.
	ScenarioDRRamp = "dr-ramp"
	// ScenarioCarbonStep follows a carbon/price signal: two successive
	// downward cap steps, ramp-tracked.
	ScenarioCarbonStep = "carbon-step"
	// ScenarioHeatSpike is a facility-water excursion: coolant inlet
	// +12 °C for ten minutes, tripping DVFS throttling on loaded nodes
	// and perturbing measured power.
	ScenarioHeatSpike = "heat-spike"
	// ScenarioRampChaos composes a demand-response ramp with
	// flapping-gateway chaos windowed over the ramp itself — faults
	// strike during the transient, with brownout armed.
	ScenarioRampChaos = "ramp-chaos"
	// ScenarioStaleBrownout partitions odd nodes (split-brain) in a
	// mid-run window with brownout armed: the controller must engage
	// brownout on the stale-read fraction and release it when the
	// fabric heals.
	ScenarioStaleBrownout = "stale-brownout"
)

var registry = map[string]*Scenario{
	ScenarioDiurnal: {
		Name:            ScenarioDiurnal,
		Desc:            "day-cycle sinusoidal arrivals, static cap",
		Arrivals:        ArrivalsDiurnal,
		MaxOverPct:      6,
		MaxEnergyErrPct: 1,
	},
	ScenarioMMPPBurst: {
		Name:            ScenarioMMPPBurst,
		Desc:            "MMPP arrivals: quiet floor with periodic 7x bursts",
		Arrivals:        ArrivalsMMPP,
		MaxOverPct:      6,
		MaxEnergyErrPct: 1,
	},
	ScenarioWeekendLull: {
		Name:            ScenarioWeekendLull,
		Desc:            "busy/lull alternating arrivals, static cap",
		Arrivals:        ArrivalsWeekendLull,
		MaxOverPct:      8,
		MaxEnergyErrPct: 1,
	},
	ScenarioDRRamp: {
		Name: ScenarioDRRamp,
		Desc: "demand-response: cap sheds 20% over [300, 1200) at a 20 W/s ramp",
		Cap: &CapTrajectory{Steps: []CapStep{
			{T0: 300, T1: 1200, Frac: 0.80},
		}},
		RampWPerS: 20,
		Phases: []Phase{
			{Name: "pre", T0: 0, T1: 300},
			{Name: "shed", T0: 300, T1: 1200},
			{Name: "recover", T0: 1200, T1: 1e9},
		},
		MaxOverPct:      8,
		MaxEnergyErrPct: 1,
	},
	ScenarioCarbonStep: {
		Name: ScenarioCarbonStep,
		Desc: "carbon signal: cap steps to 90% then 80%, 40 W/s ramp tracking",
		Cap: &CapTrajectory{Steps: []CapStep{
			{T0: 200, T1: 600, Frac: 0.90},
			{T0: 600, T1: 1000, Frac: 0.80},
		}},
		RampWPerS: 40,
		Phases: []Phase{
			{Name: "nominal", T0: 0, T1: 200},
			{Name: "step1", T0: 200, T1: 600},
			{Name: "step2", T0: 600, T1: 1000},
			{Name: "recover", T0: 1000, T1: 1e9},
		},
		MaxOverPct:      8,
		MaxEnergyErrPct: 1,
	},
	ScenarioHeatSpike: {
		Name: ScenarioHeatSpike,
		Desc: "facility-water excursion: coolant +12 C over [300, 900), DVFS throttling",
		Thermal: []ThermalEvent{
			{T0: 300, T1: 900, DeltaC: 12},
		},
		Phases: []Phase{
			{Name: "cool", T0: 0, T1: 300},
			{Name: "hot", T0: 300, T1: 900},
			{Name: "recover", T0: 900, T1: 1e9},
		},
		MaxOverPct:      6,
		MaxEnergyErrPct: 1,
	},
	ScenarioRampChaos: {
		Name: ScenarioRampChaos,
		Desc: "demand-response ramp with flapping gateways during the shed window, brownout armed",
		Cap: &CapTrajectory{Steps: []CapStep{
			{T0: 300, T1: 1200, Frac: 0.80},
		}},
		RampWPerS: 20,
		Chaos: []ChaosPhase{
			{Preset: fleet.ChaosFlappingGateway, T0: 300, T1: 1200},
		},
		BrownoutStaleFrac: 0.30,
		Phases: []Phase{
			{Name: "pre", T0: 0, T1: 300},
			{Name: "shed+chaos", T0: 300, T1: 1200},
			{Name: "recover", T0: 1200, T1: 1e9},
		},
		MaxOverPct:      10,
		MaxEnergyErrPct: 3,
	},
	// The stale-brownout overshoot bound is the loosest in the registry
	// by design: a partition that *starts mid-run* is strictly nastier
	// than the always-on split-brain of E19 (bound 8%), because the
	// onset catches a filling machine — the controller admits into
	// phantom headroom read from stale-held node values, and already-
	// running jobs keep ramping regardless of what admission does next.
	// Brownout is reactive: it cannot undo the onset peak (observed
	// ~20% at the reference E22 geometry), but it bounds the *duration*
	// spent over cap — the E22 suite asserts brownout engages, releases
	// after the heal, and strictly reduces cap-violation seconds vs the
	// same run with brownout disarmed.
	ScenarioStaleBrownout: {
		Name: ScenarioStaleBrownout,
		Desc: "split-brain partition over [200, 800) with brownout admission armed",
		Chaos: []ChaosPhase{
			{Preset: fleet.ChaosSplitBrain, T0: 200, T1: 800},
		},
		BrownoutStaleFrac: 0.15,
		Phases: []Phase{
			{Name: "healthy", T0: 0, T1: 200},
			{Name: "partitioned", T0: 200, T1: 800},
			{Name: "healed", T0: 800, T1: 1e9},
		},
		MaxOverPct:      22,
		MaxEnergyErrPct: 10,
	},
}

// Names lists the registered scenarios, sorted.
func Names() []string {
	ns := make([]string, 0, len(registry))
	for n := range registry {
		ns = append(ns, n)
	}
	sort.Strings(ns)
	return ns
}

// Get resolves a scenario name. The returned value is shared — treat
// it as read-only (copy before mutating).
func Get(name string) (*Scenario, error) {
	sc, ok := registry[name]
	if !ok {
		return nil, fmt.Errorf("scenario: unknown scenario %q (have %v)", name, Names())
	}
	return sc, nil
}
