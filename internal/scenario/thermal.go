package scenario

import (
	"errors"

	"davide/internal/thermal"
	"davide/internal/units"
)

// Thermal perturbation: coolant-inlet excursions drive per-node RC die
// models (internal/thermal) whose throttle state applies DVFS to the
// tick's power levels before they are streamed — so a heat event shows
// up in *measured* power exactly the way hardware DVFS would make it,
// and the controller has to live with the perturbed measurements.

const (
	// baseCoolantC is the pilot facility inlet (§II-C: 35 °C).
	baseCoolantC = 35
	// dieTMaxC / dieHystC are the node-level throttle trip point and
	// release hysteresis.
	dieTMaxC = 95
	dieHystC = 6
	// throttleDynFrac is the fraction of dynamic (above-idle) power a
	// throttled node retains — one DVFS step down.
	throttleDynFrac = 0.7
	// steadyMarginC positions the die's steady-state temperature at
	// reference load this far below the trip point under base coolant:
	// the machine never throttles in a clean run, and an excursion of
	// ~1.5× the margin trips loaded nodes only.
	steadyMarginC = 8
	// dieTauS is the thermal time constant (R·C): two to three control
	// ticks, so excursions bite within a tick or two rather than
	// instantly or never.
	dieTauS = 90
)

// ThermalPerturber owns one die model per node and implements the
// controller's Perturb hook. Deterministic: die state advances only
// with the tick cadence of the run.
type ThermalPerturber struct {
	events []ThermalEvent
	dies   []*thermal.Die
	idleW  float64
}

// NewThermalPerturber sizes per-node dies for a machine whose loaded
// nodes draw about refLoadW watts: the die's thermal resistance is set
// so steady state at refLoadW under base coolant sits steadyMarginC
// below the trip point. idleW is the per-node idle floor the throttle
// never cuts below.
func NewThermalPerturber(nodes int, events []ThermalEvent, idleW, refLoadW float64) (*ThermalPerturber, error) {
	if nodes <= 0 {
		return nil, errors.New("scenario: thermal perturber needs nodes")
	}
	if refLoadW <= 0 || refLoadW <= idleW {
		return nil, errors.New("scenario: thermal reference load must exceed idle power")
	}
	r := (dieTMaxC - steadyMarginC - baseCoolantC) / refLoadW
	c := dieTauS / r
	p := &ThermalPerturber{events: events, idleW: idleW, dies: make([]*thermal.Die, nodes)}
	for n := range p.dies {
		die, err := thermal.NewDie(r, c, dieTMaxC, dieHystC, baseCoolantC)
		if err != nil {
			return nil, err
		}
		p.dies[n] = die
	}
	return p, nil
}

// coolantAt returns the inlet reference at time t: base plus every
// active excursion.
func (p *ThermalPerturber) coolantAt(t float64) units.Celsius {
	c := units.Celsius(baseCoolantC)
	for _, ev := range p.events {
		if t >= ev.T0 && t < ev.T1 {
			c += units.Celsius(ev.DeltaC)
		}
	}
	return c
}

// Perturb implements the controller's thermal seam: advance each die
// under the tick's offered power and the current coolant, then apply
// one DVFS step to every node whose die is tripped. Levels are
// mutated in place.
func (p *ThermalPerturber) Perturb(t0, t1 float64, levels []float64) {
	coolant := p.coolantAt(t0)
	dt := t1 - t0
	for n := range levels {
		if n >= len(p.dies) {
			return
		}
		die := p.dies[n]
		die.SetCoolant(coolant)
		if _, err := die.Advance(units.Watt(levels[n]), dt); err != nil {
			continue
		}
		if die.Throttled() && levels[n] > p.idleW {
			levels[n] = p.idleW + throttleDynFrac*(levels[n]-p.idleW)
		}
	}
}

// ThrottledNodes reports how many dies are currently tripped.
func (p *ThermalPerturber) ThrottledNodes() int {
	n := 0
	for _, d := range p.dies {
		if d.Throttled() {
			n++
		}
	}
	return n
}
