package scenario

import (
	"fmt"
	"math"
	"strings"
	"testing"

	"davide/internal/workload"
)

func TestArrivalRatesMeanNearOne(t *testing.T) {
	const period = 1200.0
	for _, kind := range ArrivalKinds() {
		rate, err := rateFn(kind, period)
		if err != nil {
			t.Fatalf("%s: %v", kind, err)
		}
		sum := 0.0
		for s := 0.0; s < period; s++ {
			r := rate(s)
			if r <= 0 {
				t.Fatalf("%s: rate %g at t=%g not strictly positive", kind, r, s)
			}
			sum += r
		}
		if mean := sum / period; math.Abs(mean-1) > 0.05 {
			t.Errorf("%s: mean rate %g, want ~1 (retiming must preserve trace span)", kind, mean)
		}
	}
}

func TestRetimeArrivals(t *testing.T) {
	jobs := make([]workload.Job, 40)
	for i := range jobs {
		jobs[i] = workload.Job{ID: i, SubmitAt: float64(i) * 30, Duration: 60, Nodes: 1}
	}

	t.Run("empty-kind-copies-unchanged", func(t *testing.T) {
		sc := &Scenario{Name: "plain"}
		out, err := sc.RetimeArrivals(jobs)
		if err != nil {
			t.Fatal(err)
		}
		for i := range out {
			if out[i] != jobs[i] {
				t.Fatalf("job %d changed without an arrival kind", i)
			}
		}
	})

	for _, kind := range ArrivalKinds() {
		t.Run(kind, func(t *testing.T) {
			sc := &Scenario{Name: kind, Arrivals: kind}
			out, err := sc.RetimeArrivals(jobs)
			if err != nil {
				t.Fatal(err)
			}
			if len(out) != len(jobs) {
				t.Fatalf("got %d jobs, want %d", len(out), len(jobs))
			}
			for i := range out {
				// Only SubmitAt may change.
				orig, warped := jobs[i], out[i]
				warped.SubmitAt = orig.SubmitAt
				if warped != orig {
					t.Fatalf("job %d: non-submit field mutated", i)
				}
				if i > 0 && out[i].SubmitAt < out[i-1].SubmitAt {
					t.Fatalf("submit order broken at %d: %g < %g", i, out[i].SubmitAt, out[i-1].SubmitAt)
				}
			}
			// Input untouched.
			for i := range jobs {
				if jobs[i].SubmitAt != float64(i)*30 {
					t.Fatalf("input job %d mutated", i)
				}
			}
			// The warp actually moved something.
			moved := false
			for i := range out {
				if out[i].SubmitAt != jobs[i].SubmitAt {
					moved = true
					break
				}
			}
			if !moved {
				t.Fatalf("%s warp left every submit time unchanged", kind)
			}
			// Mean-1 rate keeps the span comparable.
			span := out[len(out)-1].SubmitAt
			origSpan := jobs[len(jobs)-1].SubmitAt
			if span < 0.5*origSpan || span > 2*origSpan {
				t.Errorf("span %g strayed too far from original %g", span, origSpan)
			}
		})
	}

	t.Run("unsorted-input-rejected", func(t *testing.T) {
		bad := []workload.Job{{SubmitAt: 100}, {SubmitAt: 50}}
		sc := &Scenario{Name: "x", Arrivals: ArrivalsDiurnal}
		if _, err := sc.RetimeArrivals(bad); err == nil {
			t.Fatal("unsorted jobs accepted")
		}
	})

	t.Run("unknown-kind-rejected", func(t *testing.T) {
		sc := &Scenario{Name: "x", Arrivals: "full-moon"}
		if _, err := sc.RetimeArrivals(jobs); err == nil || !strings.Contains(err.Error(), "full-moon") {
			t.Fatalf("want unknown-kind error naming it, got %v", err)
		}
	})
}

func TestCapTrajectoryFracAt(t *testing.T) {
	var nilTraj *CapTrajectory
	if got := nilTraj.FracAt(100); got != 1 {
		t.Fatalf("nil trajectory FracAt = %g, want 1", got)
	}
	ct := &CapTrajectory{Steps: []CapStep{
		{T0: 200, T1: 600, Frac: 0.9},
		{T0: 600, T1: 1000, Frac: 0.8},
	}}
	for _, tc := range []struct{ t, want float64 }{
		{0, 1}, {199, 1}, {200, 0.9}, {599, 0.9}, {600, 0.8}, {999, 0.8}, {1000, 1},
	} {
		if got := ct.FracAt(tc.t); got != tc.want {
			t.Errorf("FracAt(%g) = %g, want %g", tc.t, got, tc.want)
		}
	}
}

func TestThermalPerturberThrottleCycle(t *testing.T) {
	const (
		idleW = 40.0
		loadW = 300.0
		tickS = 15.0
	)
	p, err := NewThermalPerturber(4, []ThermalEvent{{T0: 300, T1: 900, DeltaC: 14}}, idleW, loadW)
	if err != nil {
		t.Fatal(err)
	}
	levels := make([]float64, 4)
	throttledDuring, releasedAfter := false, false
	var lastThrottledLevel float64
	for t0 := 0.0; t0 < 1800; t0 += tickS {
		for n := range levels {
			levels[n] = loadW
		}
		p.Perturb(t0, t0+tickS, levels)
		switch {
		case t0 < 300:
			// Steady margin: no throttling in a clean run.
			if p.ThrottledNodes() != 0 {
				t.Fatalf("throttled at t=%g with base coolant", t0)
			}
			if levels[0] != loadW {
				t.Fatalf("level perturbed at t=%g without throttle", t0)
			}
		case t0 < 900:
			if p.ThrottledNodes() == 4 {
				throttledDuring = true
				lastThrottledLevel = levels[0]
			}
		default:
			if p.ThrottledNodes() == 0 {
				releasedAfter = true
			}
		}
	}
	if !throttledDuring {
		t.Fatal("+14 C excursion never tripped the dies")
	}
	if !releasedAfter {
		t.Fatal("dies never released after the excursion ended")
	}
	want := idleW + throttleDynFrac*(loadW-idleW)
	if math.Abs(lastThrottledLevel-want) > 1e-9 {
		t.Fatalf("throttled level %g, want idle+%g*dyn = %g", lastThrottledLevel, throttleDynFrac, want)
	}
}

func TestThermalPerturberRejectsBadRefLoad(t *testing.T) {
	if _, err := NewThermalPerturber(2, nil, 100, 90); err == nil {
		t.Fatal("refLoad <= idle accepted")
	}
	if _, err := NewThermalPerturber(0, nil, 40, 300); err == nil {
		t.Fatal("zero nodes accepted")
	}
}

func TestRegistryAllValid(t *testing.T) {
	names := Names()
	if len(names) < 8 {
		t.Fatalf("registry has %d scenarios, want >= 8", len(names))
	}
	for _, name := range names {
		sc, err := Get(name)
		if err != nil {
			t.Fatal(err)
		}
		if sc.Name != name {
			t.Errorf("%s: Name field %q disagrees with registry key", name, sc.Name)
		}
		if err := sc.Validate(); err != nil {
			t.Errorf("%s: %v", name, err)
		}
		if sc.MaxOverPct <= 0 || sc.MaxEnergyErrPct <= 0 {
			t.Errorf("%s: undeclared degradation bounds (over %g%%, energy %g%%)", name, sc.MaxOverPct, sc.MaxEnergyErrPct)
		}
		if sc.Desc == "" {
			t.Errorf("%s: no description", name)
		}
	}
	if _, err := Get("no-such"); err == nil || !strings.Contains(err.Error(), ScenarioDRRamp) {
		t.Fatalf("unknown-name error should list the registry, got %v", err)
	}
}

func TestValidateRejectsBadConfigs(t *testing.T) {
	bad := []*Scenario{
		{},
		{Name: "x", Arrivals: "nope"},
		{Name: "x", Cap: &CapTrajectory{Steps: []CapStep{{T0: 100, T1: 50, Frac: 0.9}}}},
		{Name: "x", Cap: &CapTrajectory{Steps: []CapStep{{T0: 0, T1: 100, Frac: 0}}}},
		{Name: "x", Thermal: []ThermalEvent{{T0: 0, T1: 100, DeltaC: -2}}},
		{Name: "x", BrownoutStaleFrac: 1.5},
		{Name: "x", Phases: []Phase{{Name: "p", T0: 10, T1: 10}}},
		{Name: "x", Chaos: []ChaosPhase{{Preset: "bogus"}}},
		{Name: "x", Chaos: []ChaosPhase{{Preset: "bridge-flap"}}},
	}
	for i, sc := range bad {
		if err := sc.Validate(); err == nil {
			t.Errorf("bad scenario %d accepted", i)
		}
	}
}

// rampSource serves a constant per-node power so CapTrack arithmetic is
// checkable by hand.
type rampSource struct {
	perNode float64
}

func (r rampSource) MeanPower(node int, t0, t1 float64) (float64, error) {
	if node == 1 {
		return 0, fmt.Errorf("node 1 window empty") // lossy telemetry tolerated
	}
	return r.perNode, nil
}

func TestCapTrackArithmetic(t *testing.T) {
	sc := &Scenario{
		Name:      "track",
		Cap:       &CapTrajectory{Steps: []CapStep{{T0: 100, T1: 1e9, Frac: 0.5}}},
		RampWPerS: 10,
		Phases: []Phase{
			{Name: "pre", T0: 0, T1: 100},
			{Name: "shed", T0: 100, T1: 400},
		},
	}
	// 4 nodes at 300 W each, one node's telemetry missing -> 900 W
	// measured. Nominal cap 1200 W; target drops to 600 W at t=100 and
	// ramps there at 10 W/s (100 W per 10 s tick).
	got, err := CapTrack(rampSource{perNode: 300}, 4, 1200, 10, 400, sc)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 {
		t.Fatalf("got %d phases, want 2", len(got))
	}
	pre, shed := got[0], got[1]
	if pre.Ticks != 10 || pre.OverTicks != 0 {
		t.Fatalf("pre phase: %+v (want 10 clean ticks)", pre)
	}
	if pre.MeanCapW != 1200 || pre.MeanPowerW != 900 {
		t.Fatalf("pre phase means: %+v", pre)
	}
	if shed.Ticks != 30 {
		t.Fatalf("shed phase ticks = %d, want 30", shed.Ticks)
	}
	// Cap walks 1200 -> 1100 -> ... -> 600; measured stays 900, so the
	// worst overshoot is 900 - 600 = 300 W = 50% of the 600 W cap.
	if shed.MaxOverW != 300 || shed.MaxOverPct != 50 {
		t.Fatalf("shed overshoot: %+v (want max 300 W / 50%%)", shed)
	}
	if shed.OverTicks == 0 || shed.OverTicks >= shed.Ticks {
		t.Fatalf("shed OverTicks = %d of %d: ramp should cross measured power mid-phase", shed.OverTicks, shed.Ticks)
	}
	// Determinism: same inputs, identical report.
	again, err := CapTrack(rampSource{perNode: 300}, 4, 1200, 10, 400, sc)
	if err != nil {
		t.Fatal(err)
	}
	for i := range got {
		if got[i] != again[i] {
			t.Fatalf("CapTrack not deterministic at phase %d", i)
		}
	}
}
