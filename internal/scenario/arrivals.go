package scenario

import (
	"fmt"
	"math"
	"sort"

	"davide/internal/workload"
)

// Arrival-process generators. A base workload trace (Poisson arrivals
// from workload.Generator) is reshaped by a time-varying rate r(t)
// with mean ≈ 1: each submit time is warped through the inverse of the
// cumulative rate, so where r is high, arrivals bunch (bursts), and
// where r is low, they spread (lulls). The warp is strictly monotone,
// so submit order — which the controller validates — is preserved,
// and the total span of the trace stays roughly the same because the
// mean rate is 1.

// Arrival kinds.
const (
	// ArrivalsDiurnal modulates arrivals with a day-cycle sinusoid:
	// r(t) = 1 + 0.6 sin(2πt/P).
	ArrivalsDiurnal = "diurnal"
	// ArrivalsMMPP is a two-state Markov-modulated Poisson process
	// flattened to its deterministic cycle: a quiet state (rate 0.4)
	// with a burst state (rate 2.8) in the last quarter of each
	// period — mean exactly 1.
	ArrivalsMMPP = "mmpp"
	// ArrivalsWeekendLull alternates a busy half-period (rate 1.65)
	// with a lull half-period (rate 0.35) — mean exactly 1.
	ArrivalsWeekendLull = "weekend-lull"
)

// ArrivalKinds lists the available arrival reshapings, sorted.
func ArrivalKinds() []string {
	ks := []string{ArrivalsDiurnal, ArrivalsMMPP, ArrivalsWeekendLull}
	sort.Strings(ks)
	return ks
}

// rateFn resolves an arrival kind to its rate function r(t) (mean ≈ 1,
// strictly positive).
func rateFn(kind string, period float64) (func(t float64) float64, error) {
	switch kind {
	case ArrivalsDiurnal:
		return func(t float64) float64 {
			return 1 + 0.6*math.Sin(2*math.Pi*t/period)
		}, nil
	case ArrivalsMMPP:
		return func(t float64) float64 {
			if math.Mod(t, period) >= 0.75*period {
				return 2.8
			}
			return 0.4
		}, nil
	case ArrivalsWeekendLull:
		return func(t float64) float64 {
			if math.Mod(t, period) >= 0.5*period {
				return 0.35
			}
			return 1.65
		}, nil
	default:
		return nil, fmt.Errorf("scenario: unknown arrival kind %q (have %v)", kind, ArrivalKinds())
	}
}

// RetimeArrivals warps the jobs' submit times through the scenario's
// arrival process and returns a fresh slice (the input is never
// mutated; all other job fields carry over). With no arrival kind set
// the input is copied unchanged. Jobs must be sorted by SubmitAt —
// the warp preserves that order.
func (sc *Scenario) RetimeArrivals(jobs []workload.Job) ([]workload.Job, error) {
	out := append([]workload.Job(nil), jobs...)
	if sc.Arrivals == "" {
		return out, nil
	}
	rate, err := rateFn(sc.Arrivals, sc.arrivalPeriod())
	if err != nil {
		return nil, err
	}
	// Invert the cumulative rate numerically: find s with ∫₀ˢ r = T
	// for each (ascending) original submit time T, marching the
	// integral forward in 1 s steps shared across all jobs.
	const ds = 1.0
	s, acc := 0.0, 0.0
	for i := range out {
		target := out[i].SubmitAt
		if i > 0 && target < jobs[i-1].SubmitAt {
			return nil, fmt.Errorf("scenario: jobs not sorted by submit time at index %d", i)
		}
		for acc < target {
			acc += rate(s) * ds
			s += ds
		}
		out[i].SubmitAt = s
	}
	return out, nil
}
