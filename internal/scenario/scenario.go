// Package scenario is the deterministic, seeded scenario engine: it
// composes the workload-side and environment-side stresses a real
// grid-interactive datacenter sees — arrival-process shaping (diurnal
// sinusoid, MMPP bursts, weekend lull), dynamic power-cap trajectories
// (demand-response ramps, price/carbon step schedules), thermal events
// (coolant-inlet excursions driving DVFS throttling through
// internal/thermal), and phase-windowed composed chaos (existing
// presets stacked so faults strike *during* the transients) — into one
// named, reproducible configuration the live control plane runs under
// (core.RunScenario). Every named scenario documents the cap-overshoot
// and energy-error bound the E22 matrix asserts; see DESIGN.md §10.
//
// A Scenario is pure configuration: same scenario + same seed + same
// jobs ⇒ a bit-identical run. Nothing here reads wall clocks or global
// RNGs.
package scenario

import (
	"errors"
	"fmt"

	"davide/internal/chaos"
	"davide/internal/fleet"
)

// Phase names one report window [T0, T1) of the run, in virtual
// seconds — the granularity cap-overshoot is reported at (see
// CapTrack). Scenario phases are descriptive only; they do not alter
// the run.
type Phase struct {
	Name   string
	T0, T1 float64
}

// CapStep scales the nominal power cap by Frac while virtual time is
// in [T0, T1). Outside every step the cap target is the nominal cap.
type CapStep struct {
	T0, T1 float64
	Frac   float64
}

// CapTrajectory is a piecewise cap schedule in fractions of the
// nominal cap (so one trajectory serves any machine size).
type CapTrajectory struct {
	Steps []CapStep
}

// FracAt returns the cap fraction targeted at time t (1 outside every
// step; overlapping steps resolve to the first match).
func (ct *CapTrajectory) FracAt(t float64) float64 {
	if ct == nil {
		return 1
	}
	for _, s := range ct.Steps {
		if t >= s.T0 && t < s.T1 {
			return s.Frac
		}
	}
	return 1
}

// ThermalEvent raises the coolant-inlet reference by DeltaC degrees
// while virtual time is in [T0, T1) — a facility-water excursion.
// Overlapping events stack additively.
type ThermalEvent struct {
	T0, T1 float64
	DeltaC float64
}

// ChaosPhase activates a named gateway chaos preset while *payload*
// time is in [T0, T1) (zero window = whole run); phases compose via
// fleet.ChaosStack into one chaos.Composite.
type ChaosPhase struct {
	Preset string
	T0, T1 float64
}

// Scenario is one named, fully deterministic stress configuration.
type Scenario struct {
	Name string
	Desc string

	// Arrivals selects the arrival-process reshaping applied to the
	// workload's submit times ("" = leave the trace untouched; see
	// ArrivalKinds). ArrivalPeriodS is the modulation period (default
	// 1200 s).
	Arrivals       string
	ArrivalPeriodS float64

	// Cap, when non-nil, is the dynamic cap trajectory the controller
	// must track; RampWPerS is the tracking ramp-rate limit handed to
	// sched.ControllerConfig.CapRampWPerS (0 = jump).
	Cap       *CapTrajectory
	RampWPerS float64

	// Thermal events perturb measured power through DVFS throttling.
	Thermal []ThermalEvent

	// Chaos is the phase-windowed fault stack applied to the gateway
	// links.
	Chaos []ChaosPhase

	// BrownoutStaleFrac arms the controller's stale-telemetry brownout
	// mode (0 = disarmed); see sched.ControllerConfig.
	BrownoutStaleFrac float64

	// Phases are the named report windows for cap tracking; empty
	// means one whole-run window.
	Phases []Phase

	// MaxOverPct is the documented worst cap overshoot (percent over
	// the *tracked* cap) a power-aware run of this scenario may show;
	// MaxEnergyErrPct bounds the measured-vs-true energy disagreement.
	// Both are asserted by the E22 matrix.
	MaxOverPct      float64
	MaxEnergyErrPct float64
}

// Validate reports whether the scenario is usable.
func (sc *Scenario) Validate() error {
	if sc.Name == "" {
		return errors.New("scenario: unnamed scenario")
	}
	if sc.Arrivals != "" {
		if _, err := rateFn(sc.Arrivals, sc.arrivalPeriod()); err != nil {
			return err
		}
	}
	if sc.Cap != nil {
		for i, s := range sc.Cap.Steps {
			if s.T1 <= s.T0 || s.T0 < 0 {
				return fmt.Errorf("scenario: %s cap step %d window [%g, %g) invalid", sc.Name, i, s.T0, s.T1)
			}
			if s.Frac <= 0 || s.Frac > 1.5 {
				return fmt.Errorf("scenario: %s cap step %d fraction %g out of (0, 1.5]", sc.Name, i, s.Frac)
			}
		}
	}
	for i, ev := range sc.Thermal {
		if ev.T1 <= ev.T0 || ev.T0 < 0 {
			return fmt.Errorf("scenario: %s thermal event %d window [%g, %g) invalid", sc.Name, i, ev.T0, ev.T1)
		}
		if ev.DeltaC <= 0 {
			return fmt.Errorf("scenario: %s thermal event %d raises coolant by %g °C (need > 0)", sc.Name, i, ev.DeltaC)
		}
	}
	if sc.BrownoutStaleFrac < 0 || sc.BrownoutStaleFrac > 1 {
		return fmt.Errorf("scenario: %s BrownoutStaleFrac %g out of [0, 1]", sc.Name, sc.BrownoutStaleFrac)
	}
	for i, ph := range sc.Phases {
		if ph.T1 <= ph.T0 {
			return fmt.Errorf("scenario: %s phase %d (%s) window [%g, %g) invalid", sc.Name, i, ph.Name, ph.T0, ph.T1)
		}
	}
	// Chaos preset names are validated by BuildChaos against the fleet
	// registries (which own the name space); do it now so a bad name
	// fails at Validate time, not mid-run.
	if _, err := sc.BuildChaos(1); err != nil {
		return err
	}
	return nil
}

func (sc *Scenario) arrivalPeriod() float64 {
	if sc.ArrivalPeriodS > 0 {
		return sc.ArrivalPeriodS
	}
	return 1200
}

// CapSchedule returns the controller cap schedule for a machine with
// the given nominal cap, or nil when the scenario's cap is static.
func (sc *Scenario) CapSchedule(nominalCapW float64) func(t float64) float64 {
	if sc.Cap == nil {
		return nil
	}
	traj := sc.Cap
	return func(t float64) float64 { return nominalCapW * traj.FracAt(t) }
}

// BuildChaos composes the scenario's chaos phases into one planner
// (nil when the scenario injects no faults). Preset names are checked
// against both fleet registries up front.
func (sc *Scenario) BuildChaos(seed int64) (chaos.Planner, error) {
	if len(sc.Chaos) == 0 {
		return nil, nil
	}
	phases := make([]fleet.ChaosPhase, len(sc.Chaos))
	for i, cp := range sc.Chaos {
		phases[i] = fleet.ChaosPhase{Preset: cp.Preset, T0: cp.T0, T1: cp.T1}
	}
	return fleet.ChaosStack(seed, phases...)
}

// ReportPhases returns the scenario's named report windows, or one
// whole-run window [0, horizon) when none are declared.
func (sc *Scenario) ReportPhases(horizon float64) []Phase {
	if len(sc.Phases) > 0 {
		return sc.Phases
	}
	return []Phase{{Name: "run", T0: 0, T1: horizon}}
}
