// Package rack models the OpenRack integration of D.A.V.I.D.E. (§II-F and
// §III of the paper): the rack-level power bank that consolidates AC/DC
// conversion (replacing two PSUs per node with a few shared rack supplies),
// the resulting efficiency gain (the paper claims up to 5 % of total power),
// the improved power-signal quality that enables >1 kHz sampling, the
// centralised fan wall, and the redundant management controller.
//
// PSU efficiency follows the usual load curve: poor at light load, peaking
// around 50-80 % load — which is exactly why consolidation helps: many
// node-level PSUs idle at the inefficient left end of their curve, while a
// few rack-level supplies run near their sweet spot.
package rack

import (
	"errors"
	"fmt"
	"math"

	"davide/internal/units"
)

// PSU is one AC/DC power supply with a load-dependent efficiency curve.
type PSU struct {
	RatedPower units.Watt
	// EffLow/EffPeak/EffFull anchor the efficiency curve at 10 %, 60 %
	// and 100 % load (three-point piecewise-linear model; 80 PLUS-like).
	EffLow, EffPeak, EffFull float64
}

// Validate reports whether the PSU parameters are usable.
func (p PSU) Validate() error {
	switch {
	case p.RatedPower <= 0:
		return errors.New("rack: PSU rated power must be positive")
	case p.EffLow <= 0 || p.EffLow >= 1:
		return errors.New("rack: EffLow out of (0,1)")
	case p.EffPeak <= 0 || p.EffPeak >= 1:
		return errors.New("rack: EffPeak out of (0,1)")
	case p.EffFull <= 0 || p.EffFull >= 1:
		return errors.New("rack: EffFull out of (0,1)")
	case p.EffPeak < p.EffLow || p.EffPeak < p.EffFull:
		return errors.New("rack: efficiency must peak at mid load")
	}
	return nil
}

// NodePSU returns a server-grade 1.6 kW supply (two of these per node in
// the conventional design).
func NodePSU() PSU {
	return PSU{RatedPower: 1600, EffLow: 0.82, EffPeak: 0.915, EffFull: 0.89}
}

// RackPSU returns one shelf supply of the OpenRack power bank.
func RackPSU() PSU {
	return PSU{RatedPower: 3300, EffLow: 0.90, EffPeak: 0.955, EffFull: 0.94}
}

// Efficiency returns the conversion efficiency at the given output load.
// Loads beyond rated power return an error.
func (p PSU) Efficiency(load units.Watt) (float64, error) {
	if err := p.Validate(); err != nil {
		return 0, err
	}
	if load < 0 {
		return 0, errors.New("rack: negative load")
	}
	if load > p.RatedPower {
		return 0, fmt.Errorf("rack: load %v exceeds rating %v", load, p.RatedPower)
	}
	frac := float64(load) / float64(p.RatedPower)
	switch {
	case frac <= 0.10:
		// Below 10 % load efficiency collapses towards a floor.
		floor := p.EffLow * 0.7
		return floor + (p.EffLow-floor)*frac/0.10, nil
	case frac <= 0.60:
		return p.EffLow + (p.EffPeak-p.EffLow)*(frac-0.10)/0.50, nil
	default:
		return p.EffPeak + (p.EffFull-p.EffPeak)*(frac-0.60)/0.40, nil
	}
}

// InputPower returns AC input power needed to deliver load at the output.
func (p PSU) InputPower(load units.Watt) (units.Watt, error) {
	if load == 0 {
		// Standby draw ~1% of rating.
		return units.Watt(0.01 * float64(p.RatedPower)), nil
	}
	eff, err := p.Efficiency(load)
	if err != nil {
		return 0, err
	}
	return units.Watt(float64(load) / eff), nil
}

// PowerScheme selects node-level or rack-level AC/DC conversion.
type PowerScheme int

// Conversion schemes compared in experiment E3.
const (
	NodeLevelPSUs PowerScheme = iota // 2 redundant PSUs per node (1+1)
	RackLevelBank                    // OpenRack shared power bank (N+1)
)

// String names the scheme.
func (s PowerScheme) String() string {
	if s == NodeLevelPSUs {
		return "node-level PSUs"
	}
	return "OpenRack power bank"
}

// Rack is one OpenRack cabinet.
type Rack struct {
	Scheme     PowerScheme
	Nodes      int
	BudgetW    units.Watt // paper: 32 kW per rack feed
	nodeLoadW  []float64  // DC load per node
	BankPSUs   int        // supplies in the power bank (RackLevelBank)
	psuNode    PSU
	psuRack    PSU
	MgmtPowerW units.Watt // management controller draw
}

// New creates a rack with the given scheme and node count.
func New(scheme PowerScheme, nodes int, budget units.Watt) (*Rack, error) {
	if nodes <= 0 {
		return nil, errors.New("rack: node count must be positive")
	}
	if budget <= 0 {
		return nil, errors.New("rack: budget must be positive")
	}
	r := &Rack{
		Scheme:     scheme,
		Nodes:      nodes,
		BudgetW:    budget,
		nodeLoadW:  make([]float64, nodes),
		psuNode:    NodePSU(),
		psuRack:    RackPSU(),
		MgmtPowerW: 60,
	}
	if scheme == RackLevelBank {
		// Size the bank N+1 at the rack budget.
		need := int(math.Ceil(float64(budget) / float64(r.psuRack.RatedPower)))
		r.BankPSUs = need + 1
	}
	return r, nil
}

// SetNodeLoad records the DC power drawn by node i.
func (r *Rack) SetNodeLoad(i int, load units.Watt) error {
	if i < 0 || i >= r.Nodes {
		return fmt.Errorf("rack: node %d out of range [0,%d)", i, r.Nodes)
	}
	if load < 0 {
		return errors.New("rack: negative load")
	}
	r.nodeLoadW[i] = float64(load)
	return nil
}

// DCLoad returns the sum of node DC loads.
func (r *Rack) DCLoad() units.Watt {
	s := 0.0
	for _, l := range r.nodeLoadW {
		s += l
	}
	return units.Watt(s)
}

// ACInput returns the AC power the rack draws from the facility, including
// conversion losses and the management controller.
func (r *Rack) ACInput() (units.Watt, error) {
	switch r.Scheme {
	case NodeLevelPSUs:
		// Each node has 1+1 redundant supplies sharing its load; both are
		// energised, each carrying half the node load — the inefficient
		// low end of the curve.
		var total units.Watt
		for _, l := range r.nodeLoadW {
			half := units.Watt(l / 2)
			in, err := r.psuNode.InputPower(half)
			if err != nil {
				return 0, err
			}
			total += 2 * in
		}
		return total + r.MgmtPowerW, nil
	case RackLevelBank:
		// The bank spreads the whole rack load across its N+1 supplies;
		// the controller keeps all shelves active load-balanced.
		load := r.DCLoad()
		if r.BankPSUs == 0 {
			return 0, errors.New("rack: no bank PSUs")
		}
		per := units.Watt(float64(load) / float64(r.BankPSUs))
		in, err := r.psuRack.InputPower(per)
		if err != nil {
			return 0, err
		}
		return units.Watt(float64(in)*float64(r.BankPSUs)) + r.MgmtPowerW, nil
	default:
		return 0, fmt.Errorf("rack: unknown scheme %d", int(r.Scheme))
	}
}

// ConversionLoss returns AC input minus DC load.
func (r *Rack) ConversionLoss() (units.Watt, error) {
	in, err := r.ACInput()
	if err != nil {
		return 0, err
	}
	return in - r.DCLoad() - r.MgmtPowerW, nil
}

// PSUCount returns the number of AC/DC supplies in the rack.
func (r *Rack) PSUCount() int {
	if r.Scheme == NodeLevelPSUs {
		return 2 * r.Nodes
	}
	return r.BankPSUs
}

// MeasurementNoise returns the relative RMS noise on a power measurement
// taken at the node's DC input. Rack-level conversion yields a clean DC
// bus (§II-F: "the quality of the power signal improves dramatically"),
// which is what allows the EG's >1 kHz sampling to be meaningful.
func (r *Rack) MeasurementNoise() float64 {
	if r.Scheme == RackLevelBank {
		return 0.002 // 0.2 % on the shared 12 V bus
	}
	return 0.02 // 2 % with per-node switching supplies
}

// ExpectedPSUFailuresPerYear estimates annual PSU failures in the rack
// given a per-PSU annualised failure rate (the paper: PSUs are a high
// failure-rate component; fewer of them raises reliability).
func (r *Rack) ExpectedPSUFailuresPerYear(perPSURate float64) (float64, error) {
	if perPSURate < 0 {
		return 0, errors.New("rack: negative failure rate")
	}
	return perPSURate * float64(r.PSUCount()), nil
}

// Comparison is the result of an E3 node-vs-rack conversion study.
type Comparison struct {
	DCLoad       units.Watt
	NodeLevelAC  units.Watt
	RackLevelAC  units.Watt
	SavingPct    float64
	NodePSUCount int
	RackPSUCount int
	NodeNoisePct float64
	RackNoisePct float64
}

// Compare runs both schemes at the same per-node DC load.
func Compare(nodes int, perNode units.Watt, budget units.Watt) (Comparison, error) {
	nl, err := New(NodeLevelPSUs, nodes, budget)
	if err != nil {
		return Comparison{}, err
	}
	rl, err := New(RackLevelBank, nodes, budget)
	if err != nil {
		return Comparison{}, err
	}
	for i := 0; i < nodes; i++ {
		if err := nl.SetNodeLoad(i, perNode); err != nil {
			return Comparison{}, err
		}
		if err := rl.SetNodeLoad(i, perNode); err != nil {
			return Comparison{}, err
		}
	}
	acN, err := nl.ACInput()
	if err != nil {
		return Comparison{}, err
	}
	acR, err := rl.ACInput()
	if err != nil {
		return Comparison{}, err
	}
	c := Comparison{
		DCLoad:       nl.DCLoad(),
		NodeLevelAC:  acN,
		RackLevelAC:  acR,
		NodePSUCount: nl.PSUCount(),
		RackPSUCount: rl.PSUCount(),
		NodeNoisePct: nl.MeasurementNoise() * 100,
		RackNoisePct: rl.MeasurementNoise() * 100,
	}
	if acN > 0 {
		c.SavingPct = 100 * float64(acN-acR) / float64(acN)
	}
	return c, nil
}
