package rack

import (
	"math"
	"testing"
	"testing/quick"

	"davide/internal/units"
)

func TestPSUValidation(t *testing.T) {
	good := NodePSU()
	mut := []func(*PSU){
		func(p *PSU) { p.RatedPower = 0 },
		func(p *PSU) { p.EffLow = 0 },
		func(p *PSU) { p.EffLow = 1 },
		func(p *PSU) { p.EffPeak = 0 },
		func(p *PSU) { p.EffFull = 1.2 },
		func(p *PSU) { p.EffPeak = p.EffLow - 0.1 },
	}
	for i, m := range mut {
		p := good
		m(&p)
		if err := p.Validate(); err == nil {
			t.Errorf("mutation %d should fail", i)
		}
	}
	if err := NodePSU().Validate(); err != nil {
		t.Error(err)
	}
	if err := RackPSU().Validate(); err != nil {
		t.Error(err)
	}
}

func TestEfficiencyCurveShape(t *testing.T) {
	p := RackPSU()
	e10, err := p.Efficiency(units.Watt(0.10 * float64(p.RatedPower)))
	if err != nil {
		t.Fatal(err)
	}
	e60, err := p.Efficiency(units.Watt(0.60 * float64(p.RatedPower)))
	if err != nil {
		t.Fatal(err)
	}
	e100, err := p.Efficiency(p.RatedPower)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(e10-p.EffLow) > 1e-9 || math.Abs(e60-p.EffPeak) > 1e-9 || math.Abs(e100-p.EffFull) > 1e-9 {
		t.Errorf("anchors = %v/%v/%v", e10, e60, e100)
	}
	if e60 <= e10 || e60 <= e100 {
		t.Error("efficiency must peak at mid load")
	}
	// Below 10% load efficiency collapses.
	e2, err := p.Efficiency(units.Watt(0.02 * float64(p.RatedPower)))
	if err != nil {
		t.Fatal(err)
	}
	if e2 >= e10 {
		t.Errorf("light-load efficiency %v should be below %v", e2, e10)
	}
}

func TestEfficiencyErrors(t *testing.T) {
	p := NodePSU()
	if _, err := p.Efficiency(-1); err == nil {
		t.Error("negative load should error")
	}
	if _, err := p.Efficiency(p.RatedPower + 1); err == nil {
		t.Error("overload should error")
	}
	bad := PSU{}
	if _, err := bad.Efficiency(1); err == nil {
		t.Error("invalid PSU should error")
	}
}

func TestInputPower(t *testing.T) {
	p := RackPSU()
	in, err := p.InputPower(units.Watt(0.6 * float64(p.RatedPower)))
	if err != nil {
		t.Fatal(err)
	}
	want := 0.6 * float64(p.RatedPower) / p.EffPeak
	if math.Abs(float64(in)-want) > 1e-9 {
		t.Errorf("InputPower = %v, want %v", in, want)
	}
	standby, err := p.InputPower(0)
	if err != nil || standby <= 0 {
		t.Errorf("standby = %v,%v want positive", standby, err)
	}
}

func TestNewValidation(t *testing.T) {
	if _, err := New(NodeLevelPSUs, 0, 32000); err == nil {
		t.Error("zero nodes should error")
	}
	if _, err := New(NodeLevelPSUs, 15, 0); err == nil {
		t.Error("zero budget should error")
	}
}

func TestSchemeString(t *testing.T) {
	if NodeLevelPSUs.String() == "" || RackLevelBank.String() == "" {
		t.Error("scheme names must be non-empty")
	}
	if NodeLevelPSUs.String() == RackLevelBank.String() {
		t.Error("scheme names must differ")
	}
}

func TestSetNodeLoad(t *testing.T) {
	r, err := New(NodeLevelPSUs, 4, 32000)
	if err != nil {
		t.Fatal(err)
	}
	if err := r.SetNodeLoad(0, 2000); err != nil {
		t.Fatal(err)
	}
	if err := r.SetNodeLoad(4, 1); err == nil {
		t.Error("out-of-range node should error")
	}
	if err := r.SetNodeLoad(-1, 1); err == nil {
		t.Error("negative node should error")
	}
	if err := r.SetNodeLoad(1, -5); err == nil {
		t.Error("negative load should error")
	}
	if r.DCLoad() != 2000 {
		t.Errorf("DCLoad = %v", r.DCLoad())
	}
}

func TestPSUCounts(t *testing.T) {
	nl, _ := New(NodeLevelPSUs, 15, 32000)
	rl, _ := New(RackLevelBank, 15, 32000)
	if nl.PSUCount() != 30 {
		t.Errorf("node-level PSUs = %d, want 30", nl.PSUCount())
	}
	// 32 kW / 3.3 kW = 9.7 → 10 + 1 redundancy = 11.
	if rl.PSUCount() != 11 {
		t.Errorf("rack-level PSUs = %d, want 11", rl.PSUCount())
	}
	if rl.PSUCount() >= nl.PSUCount() {
		t.Error("consolidation must reduce PSU count")
	}
}

func TestConsolidationSavingMatchesPaper(t *testing.T) {
	// The paper claims up to 5 % total power saving from rack-level
	// conversion. At the pilot's 2 kW nodes, 15 per rack:
	c, err := Compare(15, 2000, 32000)
	if err != nil {
		t.Fatal(err)
	}
	if c.SavingPct < 2 || c.SavingPct > 8 {
		t.Errorf("saving = %.2f%%, want in the paper's up-to-5%% ballpark (2-8)", c.SavingPct)
	}
	if c.RackLevelAC >= c.NodeLevelAC {
		t.Error("rack-level AC must be lower")
	}
	if c.RackPSUCount >= c.NodePSUCount {
		t.Error("rack-level must use fewer PSUs")
	}
	if c.RackNoisePct >= c.NodeNoisePct {
		t.Error("rack-level must have cleaner measurements")
	}
}

func TestACInputIncludesManagement(t *testing.T) {
	r, _ := New(RackLevelBank, 15, 32000)
	in, err := r.ACInput()
	if err != nil {
		t.Fatal(err)
	}
	// Zero load: standby + management.
	if in <= r.MgmtPowerW {
		t.Errorf("idle AC input = %v, want above management draw", in)
	}
	loss, err := r.ConversionLoss()
	if err != nil {
		t.Fatal(err)
	}
	if loss <= 0 {
		t.Errorf("conversion loss = %v, want positive", loss)
	}
}

func TestExpectedPSUFailures(t *testing.T) {
	nl, _ := New(NodeLevelPSUs, 15, 32000)
	rl, _ := New(RackLevelBank, 15, 32000)
	fn, err := nl.ExpectedPSUFailuresPerYear(0.05)
	if err != nil {
		t.Fatal(err)
	}
	fr, err := rl.ExpectedPSUFailuresPerYear(0.05)
	if err != nil {
		t.Fatal(err)
	}
	if fr >= fn {
		t.Errorf("rack failures %v should be below node-level %v", fr, fn)
	}
	if _, err := nl.ExpectedPSUFailuresPerYear(-1); err == nil {
		t.Error("negative rate should error")
	}
}

func TestCompareErrors(t *testing.T) {
	if _, err := Compare(0, 2000, 32000); err == nil {
		t.Error("zero nodes should error")
	}
	// Per-node load beyond PSU capability must surface as an error.
	if _, err := Compare(15, 4000, 64000); err == nil {
		t.Error("over-rated node load should error")
	}
}

// Property: rack-level conversion never loses to node-level at equal,
// realistic loads.
func TestConsolidationAlwaysWinsProperty(t *testing.T) {
	f := func(raw float64) bool {
		perNode := units.Watt(500 + math.Mod(math.Abs(raw), 1800)) // 0.5-2.3 kW
		c, err := Compare(15, perNode, 40000)
		if err != nil {
			return false
		}
		return c.SavingPct > 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Property: efficiency stays within (0,1) across the whole load range.
func TestEfficiencyBoundedProperty(t *testing.T) {
	f := func(raw float64) bool {
		for _, p := range []PSU{NodePSU(), RackPSU()} {
			load := units.Watt(math.Mod(math.Abs(raw), float64(p.RatedPower)))
			eff, err := p.Efficiency(load)
			if err != nil || eff <= 0 || eff >= 1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}
