// Package mqtt implements the subset of MQTT 3.1.1 used by the
// D.A.V.I.D.E. telemetry plane (§III-A1 of the paper): CONNECT/CONNACK,
// PUBLISH with QoS 0 and 1 (PUBACK), SUBSCRIBE/SUBACK with + and #
// wildcards, UNSUBSCRIBE/UNSUBACK, PINGREQ/PINGRESP, DISCONNECT, and
// retained messages. It contains a broker (the role mosquitto plays on the
// D.A.V.I.D.E. management node) and a client (the role the energy gateways
// and the telemetry agents play), both over real TCP using only the
// standard library.
package mqtt

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"unicode/utf8"
)

// PacketType is the MQTT control-packet type from the fixed header.
type PacketType byte

// MQTT 3.1.1 control packet types.
const (
	CONNECT     PacketType = 1
	CONNACK     PacketType = 2
	PUBLISH     PacketType = 3
	PUBACK      PacketType = 4
	SUBSCRIBE   PacketType = 8
	SUBACK      PacketType = 9
	UNSUBSCRIBE PacketType = 10
	UNSUBACK    PacketType = 11
	PINGREQ     PacketType = 12
	PINGRESP    PacketType = 13
	DISCONNECT  PacketType = 14
)

// String names the packet type.
func (t PacketType) String() string {
	switch t {
	case CONNECT:
		return "CONNECT"
	case CONNACK:
		return "CONNACK"
	case PUBLISH:
		return "PUBLISH"
	case PUBACK:
		return "PUBACK"
	case SUBSCRIBE:
		return "SUBSCRIBE"
	case SUBACK:
		return "SUBACK"
	case UNSUBSCRIBE:
		return "UNSUBSCRIBE"
	case UNSUBACK:
		return "UNSUBACK"
	case PINGREQ:
		return "PINGREQ"
	case PINGRESP:
		return "PINGRESP"
	case DISCONNECT:
		return "DISCONNECT"
	default:
		return fmt.Sprintf("PacketType(%d)", byte(t))
	}
}

// Errors shared by the codec.
var (
	ErrMalformed       = errors.New("mqtt: malformed packet")
	ErrPacketTooLarge  = errors.New("mqtt: packet exceeds maximum size")
	ErrBadTopic        = errors.New("mqtt: invalid topic")
	ErrConnRefused     = errors.New("mqtt: connection refused")
	errRemainingLength = errors.New("mqtt: bad remaining length")
)

// MaxPacketSize bounds accepted packets; telemetry messages are small, so a
// tight bound protects the broker from hostile or broken peers.
const MaxPacketSize = 1 << 20

// FixedHeader is the two-to-five byte header of every packet.
type FixedHeader struct {
	Type   PacketType
	Flags  byte // lower nibble of byte 1
	Length int  // remaining length
}

// appendRemainingLength appends the MQTT variable-length integer; n must
// already be validated to [0, 268435455].
func appendRemainingLength(dst []byte, n int) []byte {
	for {
		d := byte(n % 128)
		n /= 128
		if n > 0 {
			d |= 0x80
		}
		dst = append(dst, d)
		if n == 0 {
			return dst
		}
	}
}

// writeRemainingLength encodes the MQTT variable-length integer.
func writeRemainingLength(w io.Writer, n int) error {
	if n < 0 || n > 268_435_455 {
		return errRemainingLength
	}
	var buf [4]byte
	_, err := w.Write(appendRemainingLength(buf[:0], n))
	return err
}

// readRemainingLength decodes the MQTT variable-length integer.
func readRemainingLength(r io.ByteReader) (int, error) {
	mul := 1
	val := 0
	for i := 0; i < 4; i++ {
		b, err := r.ReadByte()
		if err != nil {
			return 0, err
		}
		val += int(b&0x7f) * mul
		if b&0x80 == 0 {
			return val, nil
		}
		mul *= 128
	}
	return 0, errRemainingLength
}

// byteReader adapts an io.Reader to io.ByteReader without buffering beyond
// single bytes (the fixed header must not over-read the stream).
type byteReader struct{ r io.Reader }

func (b byteReader) ReadByte() (byte, error) {
	var one [1]byte
	if _, err := io.ReadFull(b.r, one[:]); err != nil {
		return 0, err
	}
	return one[0], nil
}

// ReadFixedHeader reads the fixed header from the stream.
func ReadFixedHeader(r io.Reader) (FixedHeader, error) {
	br := byteReader{r}
	first, err := br.ReadByte()
	if err != nil {
		return FixedHeader{}, err
	}
	length, err := readRemainingLength(br)
	if err != nil {
		return FixedHeader{}, err
	}
	if length > MaxPacketSize {
		return FixedHeader{}, ErrPacketTooLarge
	}
	return FixedHeader{Type: PacketType(first >> 4), Flags: first & 0x0f, Length: length}, nil
}

// writeString writes an MQTT UTF-8 prefixed string.
func writeString(w io.Writer, s string) error {
	if len(s) > 0xffff {
		return ErrMalformed
	}
	var l [2]byte
	binary.BigEndian.PutUint16(l[:], uint16(len(s)))
	if _, err := w.Write(l[:]); err != nil {
		return err
	}
	_, err := io.WriteString(w, s)
	return err
}

// readString consumes an MQTT UTF-8 prefixed string from buf, returning the
// string and the remaining bytes.
func readString(buf []byte) (string, []byte, error) {
	if len(buf) < 2 {
		return "", nil, ErrMalformed
	}
	n := int(binary.BigEndian.Uint16(buf))
	if len(buf) < 2+n {
		return "", nil, ErrMalformed
	}
	s := string(buf[2 : 2+n])
	if !utf8.ValidString(s) {
		return "", nil, ErrMalformed
	}
	return s, buf[2+n:], nil
}

// ConnectPacket is the CONNECT payload subset we support (no will, no
// username/password — the telemetry plane runs on a trusted management
// network, as in the real system).
type ConnectPacket struct {
	ClientID     string
	KeepAliveSec uint16
	CleanSession bool
}

// encode serialises the packet with its fixed header into w.
func (p *ConnectPacket) encode(w io.Writer) error {
	var body []byte
	body = appendString(body, "MQTT")
	body = append(body, 4) // protocol level 3.1.1
	flags := byte(0)
	if p.CleanSession {
		flags |= 0x02
	}
	body = append(body, flags)
	body = binary.BigEndian.AppendUint16(body, p.KeepAliveSec)
	body = appendString(body, p.ClientID)
	return writePacket(w, CONNECT, 0, body)
}

// decodeConnect parses a CONNECT body.
func decodeConnect(body []byte) (*ConnectPacket, error) {
	proto, rest, err := readString(body)
	if err != nil {
		return nil, err
	}
	if proto != "MQTT" && proto != "MQIsdp" {
		return nil, fmt.Errorf("%w: protocol %q", ErrMalformed, proto)
	}
	if len(rest) < 4 {
		return nil, ErrMalformed
	}
	level := rest[0]
	if level != 4 && level != 3 {
		return nil, fmt.Errorf("%w: protocol level %d", ErrMalformed, level)
	}
	flags := rest[1]
	keep := binary.BigEndian.Uint16(rest[2:4])
	id, _, err := readString(rest[4:])
	if err != nil {
		return nil, err
	}
	return &ConnectPacket{ClientID: id, KeepAliveSec: keep, CleanSession: flags&0x02 != 0}, nil
}

// ConnackCode is the CONNACK return code.
type ConnackCode byte

// CONNACK return codes (3.1.1 table 3.1).
const (
	ConnAccepted          ConnackCode = 0
	ConnRefusedProtocol   ConnackCode = 1
	ConnRefusedIdentifier ConnackCode = 2
	ConnRefusedServer     ConnackCode = 3
)

func encodeConnack(w io.Writer, sessionPresent bool, code ConnackCode) error {
	sp := byte(0)
	if sessionPresent {
		sp = 1
	}
	return writePacket(w, CONNACK, 0, []byte{sp, byte(code)})
}

func decodeConnack(body []byte) (sessionPresent bool, code ConnackCode, err error) {
	if len(body) != 2 {
		return false, 0, ErrMalformed
	}
	return body[0]&1 == 1, ConnackCode(body[1]), nil
}

// PublishPacket is an application message.
//
// Ownership: a packet produced by decodePublish borrows Payload from the
// read buffer the body was parsed out of (zero-copy); it is only valid
// until that buffer is reused. Paths that retain the packet beyond the
// read cycle — the broker's retained-message store — must Clone it.
type PublishPacket struct {
	Topic    string
	Payload  []byte
	QoS      byte // 0 or 1
	Retain   bool
	Dup      bool
	PacketID uint16 // present when QoS > 0
}

// Clone deep-copies the packet so it owns its payload, detaching it from
// a borrowed read buffer.
func (p *PublishPacket) Clone() *PublishPacket {
	cp := *p
	cp.Payload = append([]byte(nil), p.Payload...)
	return &cp
}

// appendPublish appends the full encoded packet (fixed header + body) to
// dst. The body length is computed up front, so the payload is copied
// exactly once, straight into dst.
func appendPublish(dst []byte, p *PublishPacket) ([]byte, error) {
	if err := ValidateTopicName(p.Topic); err != nil {
		return nil, err
	}
	if p.QoS > 1 {
		return nil, fmt.Errorf("%w: QoS %d unsupported", ErrMalformed, p.QoS)
	}
	flags := p.QoS << 1
	if p.Retain {
		flags |= 0x01
	}
	if p.Dup {
		flags |= 0x08
	}
	bodyLen := 2 + len(p.Topic) + len(p.Payload)
	if p.QoS > 0 {
		bodyLen += 2
	}
	if bodyLen > MaxPacketSize {
		return nil, ErrPacketTooLarge
	}
	dst = append(dst, byte(PUBLISH)<<4|flags)
	dst = appendRemainingLength(dst, bodyLen)
	dst = appendString(dst, p.Topic)
	if p.QoS > 0 {
		dst = binary.BigEndian.AppendUint16(dst, p.PacketID)
	}
	return append(dst, p.Payload...), nil
}

func (p *PublishPacket) encode(w io.Writer) error {
	buf, err := appendPublish(nil, p)
	if err != nil {
		return err
	}
	_, err = w.Write(buf)
	return err
}

// decodePublish parses a PUBLISH body. The returned packet's Payload
// borrows from body — see the PublishPacket ownership note.
func decodePublish(flags byte, body []byte) (*PublishPacket, error) {
	p := &PublishPacket{
		Retain: flags&0x01 != 0,
		QoS:    (flags >> 1) & 0x03,
		Dup:    flags&0x08 != 0,
	}
	if p.QoS > 1 {
		return nil, fmt.Errorf("%w: QoS %d unsupported", ErrMalformed, p.QoS)
	}
	topic, rest, err := readString(body)
	if err != nil {
		return nil, err
	}
	if err := ValidateTopicName(topic); err != nil {
		return nil, err
	}
	p.Topic = topic
	if p.QoS > 0 {
		if len(rest) < 2 {
			return nil, ErrMalformed
		}
		p.PacketID = binary.BigEndian.Uint16(rest)
		rest = rest[2:]
	}
	p.Payload = rest
	return p, nil
}

func encodePuback(w io.Writer, id uint16) error {
	var body [2]byte
	binary.BigEndian.PutUint16(body[:], id)
	return writePacket(w, PUBACK, 0, body[:])
}

func decodePacketID(body []byte) (uint16, error) {
	if len(body) != 2 {
		return 0, ErrMalformed
	}
	return binary.BigEndian.Uint16(body), nil
}

// Subscription pairs a topic filter with a requested QoS.
type Subscription struct {
	Filter string
	QoS    byte
}

// SubscribePacket carries one or more subscription requests.
type SubscribePacket struct {
	PacketID uint16
	Subs     []Subscription
}

func (p *SubscribePacket) encode(w io.Writer) error {
	if len(p.Subs) == 0 {
		return ErrMalformed
	}
	var body []byte
	body = binary.BigEndian.AppendUint16(body, p.PacketID)
	for _, s := range p.Subs {
		if err := ValidateTopicFilter(s.Filter); err != nil {
			return err
		}
		if s.QoS > 1 {
			return fmt.Errorf("%w: QoS %d unsupported", ErrMalformed, s.QoS)
		}
		body = appendString(body, s.Filter)
		body = append(body, s.QoS)
	}
	return writePacket(w, SUBSCRIBE, 0x02, body)
}

func decodeSubscribe(body []byte) (*SubscribePacket, error) {
	if len(body) < 2 {
		return nil, ErrMalformed
	}
	p := &SubscribePacket{PacketID: binary.BigEndian.Uint16(body)}
	rest := body[2:]
	for len(rest) > 0 {
		filter, r2, err := readString(rest)
		if err != nil {
			return nil, err
		}
		if len(r2) < 1 {
			return nil, ErrMalformed
		}
		qos := r2[0]
		if qos > 1 {
			return nil, fmt.Errorf("%w: QoS %d unsupported", ErrMalformed, qos)
		}
		if err := ValidateTopicFilter(filter); err != nil {
			return nil, err
		}
		p.Subs = append(p.Subs, Subscription{Filter: filter, QoS: qos})
		rest = r2[1:]
	}
	if len(p.Subs) == 0 {
		return nil, ErrMalformed
	}
	return p, nil
}

// SubackFailure is the per-filter failure code in a SUBACK.
const SubackFailure byte = 0x80

func decodeSuback(body []byte) (id uint16, codes []byte, err error) {
	if len(body) < 3 {
		return 0, nil, ErrMalformed
	}
	return binary.BigEndian.Uint16(body), append([]byte(nil), body[2:]...), nil
}

// UnsubscribePacket removes topic filters.
type UnsubscribePacket struct {
	PacketID uint16
	Filters  []string
}

func (p *UnsubscribePacket) encode(w io.Writer) error {
	if len(p.Filters) == 0 {
		return ErrMalformed
	}
	var body []byte
	body = binary.BigEndian.AppendUint16(body, p.PacketID)
	for _, f := range p.Filters {
		if err := ValidateTopicFilter(f); err != nil {
			return err
		}
		body = appendString(body, f)
	}
	return writePacket(w, UNSUBSCRIBE, 0x02, body)
}

func decodeUnsubscribe(body []byte) (*UnsubscribePacket, error) {
	if len(body) < 2 {
		return nil, ErrMalformed
	}
	p := &UnsubscribePacket{PacketID: binary.BigEndian.Uint16(body)}
	rest := body[2:]
	for len(rest) > 0 {
		f, r2, err := readString(rest)
		if err != nil {
			return nil, err
		}
		p.Filters = append(p.Filters, f)
		rest = r2
	}
	if len(p.Filters) == 0 {
		return nil, ErrMalformed
	}
	return p, nil
}

// encodeEmpty writes a packet with no body (PINGREQ/PINGRESP/DISCONNECT).
func encodeEmpty(w io.Writer, t PacketType) error {
	return writePacket(w, t, 0, nil)
}

// appendPacket assembles fixed header + body into dst.
func appendPacket(dst []byte, t PacketType, flags byte, body []byte) ([]byte, error) {
	if len(body) > MaxPacketSize {
		return nil, ErrPacketTooLarge
	}
	dst = append(dst, byte(t)<<4|flags)
	dst = appendRemainingLength(dst, len(body))
	return append(dst, body...), nil
}

// writePacket assembles fixed header + body and writes it in one call so
// concurrent writers on the same connection cannot interleave.
func writePacket(w io.Writer, t PacketType, flags byte, body []byte) error {
	buf, err := appendPacket(nil, t, flags, body)
	if err != nil {
		return err
	}
	_, err = w.Write(buf)
	return err
}

func appendString(b []byte, s string) []byte {
	b = binary.BigEndian.AppendUint16(b, uint16(len(s)))
	return append(b, s...)
}

// ValidateTopicName checks a PUBLISH topic: non-empty, no wildcards, no NUL.
func ValidateTopicName(topic string) error {
	if topic == "" || len(topic) > 0xffff {
		return ErrBadTopic
	}
	for _, r := range topic {
		if r == '+' || r == '#' || r == 0 {
			return ErrBadTopic
		}
	}
	return nil
}

// ValidateTopicFilter checks a SUBSCRIBE filter: non-empty, '#' only as the
// final level, '+' only as a whole level.
func ValidateTopicFilter(filter string) error {
	if filter == "" || len(filter) > 0xffff {
		return ErrBadTopic
	}
	levels := splitTopic(filter)
	for i, l := range levels {
		switch {
		case l == "#":
			if i != len(levels)-1 {
				return ErrBadTopic
			}
		case l == "+":
			// single-level wildcard, fine anywhere
		default:
			for _, r := range l {
				if r == '+' || r == '#' || r == 0 {
					return ErrBadTopic
				}
			}
		}
	}
	return nil
}

// splitTopic splits a topic or filter into levels.
func splitTopic(s string) []string {
	var out []string
	start := 0
	for i := 0; i < len(s); i++ {
		if s[i] == '/' {
			out = append(out, s[start:i])
			start = i + 1
		}
	}
	return append(out, s[start:])
}

// TopicMatches reports whether a concrete topic name matches a filter with
// MQTT wildcard semantics.
func TopicMatches(filter, topic string) bool {
	f := splitTopic(filter)
	t := splitTopic(topic)
	for i := 0; ; i++ {
		switch {
		case i == len(f) && i == len(t):
			return true
		case i == len(f):
			return false
		case f[i] == "#":
			return true
		case i == len(t):
			return false
		case f[i] == "+":
			// matches any single level
		case f[i] != t[i]:
			return false
		}
	}
}
