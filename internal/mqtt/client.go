package mqtt

import (
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"sync/atomic"
	"time"
)

// Message is a received application message handed to the client callback.
//
// Ownership: Payload borrows from a pooled read buffer and is only valid
// for the duration of the handler call. A handler that hands the message
// to another goroutine or retains it must copy the payload (Clone).
type Message struct {
	Topic    string
	Payload  []byte
	QoS      byte
	Retained bool
}

// Clone returns a message that owns its payload.
func (m Message) Clone() Message {
	m.Payload = append([]byte(nil), m.Payload...)
	return m
}

// MessageHandler receives inbound messages. It runs on the client's reader
// goroutine: handlers must be quick or copy work elsewhere.
type MessageHandler func(Message)

// ClientOptions configures Dial.
type ClientOptions struct {
	ClientID     string
	KeepAlive    time.Duration // 0 disables client pings
	CleanSession bool
	ConnectWait  time.Duration // CONNACK timeout (default 5 s)
	OnMessage    MessageHandler
	// Link, when non-nil, intercepts every outbound application message
	// (see Link); the fault-injection seam. A Link outlives the client:
	// reconnect by dialing a new client with the same Link.
	Link Link
}

// ErrAborted is the close reason reported by Err after Abort.
var ErrAborted = errors.New("mqtt: connection aborted")

// ErrAbortDrainTimeout is returned by Abort when the broker did not
// drain and close the aborted stream within the wait bound — a
// reconnect under the same client ID may then discard in-flight data.
var ErrAbortDrainTimeout = errors.New("mqtt: abort: broker drain wait timed out")

// ClientStats counts client-side traffic; all fields are updated
// atomically, so a Client may be shared and inspected concurrently.
type ClientStats struct {
	Publishes    atomic.Int64 // PUBLISH packets sent
	PublishBytes atomic.Int64 // payload bytes sent in PUBLISH packets
	Received     atomic.Int64 // PUBLISH packets received
	// BufReuses counts pooled packet-buffer reuses: inbound bodies served
	// from the read pool plus outbound packets assembled in the retained
	// encode buffer without growing it.
	BufReuses atomic.Int64
}

// Client is an MQTT 3.1.1 client: the role the energy gateways (publishers)
// and telemetry agents (subscribers) play.
type Client struct {
	opts     ClientOptions
	conn     net.Conn
	writeMu  sync.Mutex
	wbuf     []byte // outbound packet assembly buffer, guarded by writeMu
	bufs     bufPool
	nextID   atomic.Uint32
	closed   atomic.Bool
	done     chan struct{}
	readDone chan struct{} // closed when readLoop exits (Abort drain wait)
	closeErr atomic.Value  // error
	Stats    ClientStats

	ackMu   sync.Mutex
	pending map[uint16]chan struct{} // QoS-1 publish awaiting PUBACK
	subMu   sync.Mutex
	subWait map[uint16]chan []byte // SUBACK/UNSUBACK waiters
}

// Dial connects to a broker and completes the CONNECT handshake.
func Dial(addr string, opts ClientOptions) (*Client, error) {
	if opts.ClientID == "" {
		return nil, errors.New("mqtt: client ID required")
	}
	if opts.ConnectWait <= 0 {
		opts.ConnectWait = 5 * time.Second
	}
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("mqtt: dial: %w", err)
	}
	c := &Client{
		opts:     opts,
		conn:     conn,
		done:     make(chan struct{}),
		readDone: make(chan struct{}),
		pending:  make(map[uint16]chan struct{}),
		subWait:  make(map[uint16]chan []byte),
	}
	c.bufs.reuses = &c.Stats.BufReuses
	cp := &ConnectPacket{
		ClientID:     opts.ClientID,
		CleanSession: opts.CleanSession,
		KeepAliveSec: uint16(opts.KeepAlive / time.Second),
	}
	_ = conn.SetDeadline(time.Now().Add(opts.ConnectWait))
	if err := cp.encode(conn); err != nil {
		_ = conn.Close()
		return nil, err
	}
	hdr, err := ReadFixedHeader(conn)
	if err != nil {
		_ = conn.Close()
		return nil, err
	}
	if hdr.Type != CONNACK {
		_ = conn.Close()
		return nil, fmt.Errorf("%w: expected CONNACK, got %v", ErrMalformed, hdr.Type)
	}
	body := make([]byte, hdr.Length)
	if _, err := io.ReadFull(conn, body); err != nil {
		_ = conn.Close()
		return nil, err
	}
	_, code, err := decodeConnack(body)
	if err != nil {
		_ = conn.Close()
		return nil, err
	}
	if code != ConnAccepted {
		_ = conn.Close()
		return nil, fmt.Errorf("%w: code %d", ErrConnRefused, code)
	}
	_ = conn.SetDeadline(time.Time{})

	go c.readLoop()
	if opts.KeepAlive > 0 {
		go c.pingLoop()
	}
	return c, nil
}

// Close disconnects cleanly.
func (c *Client) Close() error {
	if !c.closed.CompareAndSwap(false, true) {
		return nil
	}
	c.writeMu.Lock()
	_ = encodeEmpty(c.conn, DISCONNECT)
	c.writeMu.Unlock()
	close(c.done)
	return c.conn.Close()
}

// Abort tears the session down without the DISCONNECT handshake, the
// way a crashing gateway process does: the write side closes
// immediately (no new publishes; the kernel sends FIN *behind* data it
// already accepted, so a crash loses nothing that Publish reported
// written), then Abort waits — bounded — for the broker to drain the
// stream, tear the session down and close its side. Waiting matters
// for crash/reconnect cycles: redialing the same client ID while the
// old session still has unread data would make the broker's takeover
// discard it — so a timed-out drain returns ErrAbortDrainTimeout
// rather than failing that invariant silently. Err reports ErrAborted.
func (c *Client) Abort() error {
	if !c.closed.CompareAndSwap(false, true) {
		return nil
	}
	c.closeErr.Store(ErrAborted)
	var drainErr error
	type closeWriter interface{ CloseWrite() error }
	if cw, ok := c.conn.(closeWriter); ok {
		if cw.CloseWrite() == nil {
			// readLoop exits when the broker, having consumed our FIN
			// (and everything before it), closes its side.
			select {
			case <-c.readDone:
			case <-time.After(5 * time.Second):
				drainErr = ErrAbortDrainTimeout
			}
		}
	}
	close(c.done)
	_ = c.conn.Close()
	return drainErr
}

// Done is closed when the client's connection terminates for any reason.
func (c *Client) Done() <-chan struct{} { return c.done }

// Err returns the error that terminated the connection, if any.
func (c *Client) Err() error {
	if v := c.closeErr.Load(); v != nil {
		return v.(error)
	}
	return nil
}

func (c *Client) fail(err error) {
	if c.closed.CompareAndSwap(false, true) {
		c.closeErr.Store(err)
		close(c.done)
		_ = c.conn.Close()
	}
}

// Publish sends a message. QoS 0 returns after the write; QoS 1 blocks
// until PUBACK or timeout. When the client carries a Link, the message
// is routed through it first (the fault-injection seam).
func (c *Client) Publish(topic string, payload []byte, qos byte, retain bool) error {
	if c.closed.Load() {
		return io.ErrClosedPipe
	}
	if qos > 1 {
		return fmt.Errorf("%w: QoS %d unsupported", ErrMalformed, qos)
	}
	m := Message{Topic: topic, Payload: payload, QoS: qos, Retained: retain}
	if c.opts.Link != nil {
		return c.opts.Link.Send(m, c.deliver)
	}
	return c.deliver(m)
}

// Flush drains any messages the client's Link is still holding back
// (delay/reorder faults). A no-op without a Link.
func (c *Client) Flush() error {
	if c.opts.Link == nil {
		return nil
	}
	return c.opts.Link.Flush(c.deliver)
}

// deliver performs one real wire publish: the DeliverFunc handed to the
// Link, and the whole publish path when no Link is installed.
func (c *Client) deliver(m Message) error {
	if c.closed.Load() {
		return io.ErrClosedPipe
	}
	p := &PublishPacket{Topic: m.Topic, Payload: m.Payload, QoS: m.QoS, Retain: m.Retained}
	qos := m.QoS
	var ack chan struct{}
	if qos == 1 {
		p.PacketID = c.allocID()
		ack = make(chan struct{})
		c.ackMu.Lock()
		c.pending[p.PacketID] = ack
		c.ackMu.Unlock()
		defer func() {
			c.ackMu.Lock()
			delete(c.pending, p.PacketID)
			c.ackMu.Unlock()
		}()
	}
	// Assemble the packet in the client's retained encode buffer (one
	// copy of the payload, one syscall, no steady-state allocation).
	c.writeMu.Lock()
	prevCap := cap(c.wbuf)
	buf, err := appendPublish(c.wbuf[:0], p)
	if err == nil {
		c.wbuf = buf
		if prevCap > 0 && cap(buf) == prevCap {
			c.Stats.BufReuses.Add(1)
		}
		_, err = c.conn.Write(buf)
	}
	c.writeMu.Unlock()
	if err != nil {
		return err
	}
	c.Stats.Publishes.Add(1)
	c.Stats.PublishBytes.Add(int64(len(m.Payload)))
	if qos == 0 {
		return nil
	}
	select {
	case <-ack:
		return nil
	case <-c.done:
		return io.ErrClosedPipe
	case <-time.After(c.opts.ConnectWait):
		return errors.New("mqtt: PUBACK timeout")
	}
}

// Subscribe registers topic filters and waits for the SUBACK.
func (c *Client) Subscribe(subs ...Subscription) error {
	if len(subs) == 0 {
		return errors.New("mqtt: no subscriptions")
	}
	if c.closed.Load() {
		return io.ErrClosedPipe
	}
	id := c.allocID()
	wait := make(chan []byte, 1)
	c.subMu.Lock()
	c.subWait[id] = wait
	c.subMu.Unlock()
	defer func() {
		c.subMu.Lock()
		delete(c.subWait, id)
		c.subMu.Unlock()
	}()
	p := &SubscribePacket{PacketID: id, Subs: subs}
	c.writeMu.Lock()
	err := p.encode(c.conn)
	c.writeMu.Unlock()
	if err != nil {
		return err
	}
	select {
	case codes := <-wait:
		if len(codes) != len(subs) {
			return fmt.Errorf("%w: SUBACK size mismatch", ErrMalformed)
		}
		for i, code := range codes {
			if code == SubackFailure {
				return fmt.Errorf("mqtt: subscription %q rejected", subs[i].Filter)
			}
		}
		return nil
	case <-c.done:
		return io.ErrClosedPipe
	case <-time.After(c.opts.ConnectWait):
		return errors.New("mqtt: SUBACK timeout")
	}
}

// Unsubscribe removes topic filters and waits for the UNSUBACK.
func (c *Client) Unsubscribe(filters ...string) error {
	if len(filters) == 0 {
		return errors.New("mqtt: no filters")
	}
	if c.closed.Load() {
		return io.ErrClosedPipe
	}
	id := c.allocID()
	wait := make(chan []byte, 1)
	c.subMu.Lock()
	c.subWait[id] = wait
	c.subMu.Unlock()
	defer func() {
		c.subMu.Lock()
		delete(c.subWait, id)
		c.subMu.Unlock()
	}()
	p := &UnsubscribePacket{PacketID: id, Filters: filters}
	c.writeMu.Lock()
	err := p.encode(c.conn)
	c.writeMu.Unlock()
	if err != nil {
		return err
	}
	select {
	case <-wait:
		return nil
	case <-c.done:
		return io.ErrClosedPipe
	case <-time.After(c.opts.ConnectWait):
		return errors.New("mqtt: UNSUBACK timeout")
	}
}

// allocID returns a non-zero 16-bit packet identifier.
func (c *Client) allocID() uint16 {
	for {
		id := uint16(c.nextID.Add(1))
		if id != 0 {
			return id
		}
	}
}

func (c *Client) readLoop() {
	defer close(c.readDone)
	for {
		hdr, err := ReadFixedHeader(c.conn)
		if err != nil {
			c.fail(err)
			return
		}
		// Bodies come from the client's buffer pool; the packet (and a
		// PUBLISH payload handed to OnMessage) borrows from it until the
		// switch completes, then the buffer recycles.
		pb := c.bufs.Get(hdr.Length)
		body := pb.b
		if _, err := io.ReadFull(c.conn, body); err != nil {
			c.bufs.Put(pb)
			c.fail(err)
			return
		}
		if !c.dispatch(hdr, body) {
			c.bufs.Put(pb)
			return
		}
		c.bufs.Put(pb)
	}
}

// dispatch handles one inbound packet; body is only valid for the call.
// It reports whether the reader should continue.
func (c *Client) dispatch(hdr FixedHeader, body []byte) bool {
	switch hdr.Type {
	case PUBLISH:
		p, err := decodePublish(hdr.Flags, body)
		if err != nil {
			c.fail(err)
			return false
		}
		if p.QoS == 1 {
			c.writeMu.Lock()
			err := encodePuback(c.conn, p.PacketID)
			c.writeMu.Unlock()
			if err != nil {
				c.fail(err)
				return false
			}
		}
		c.Stats.Received.Add(1)
		if c.opts.OnMessage != nil {
			c.opts.OnMessage(Message{Topic: p.Topic, Payload: p.Payload, QoS: p.QoS, Retained: p.Retain})
		}
	case PUBACK:
		id, err := decodePacketID(body)
		if err != nil {
			c.fail(err)
			return false
		}
		c.ackMu.Lock()
		if ch, ok := c.pending[id]; ok {
			close(ch)
			delete(c.pending, id)
		}
		c.ackMu.Unlock()
	case SUBACK:
		id, codes, err := decodeSuback(body)
		if err != nil {
			c.fail(err)
			return false
		}
		c.subMu.Lock()
		if ch, ok := c.subWait[id]; ok {
			ch <- codes
		}
		c.subMu.Unlock()
	case UNSUBACK:
		id, err := decodePacketID(body)
		if err != nil {
			c.fail(err)
			return false
		}
		c.subMu.Lock()
		if ch, ok := c.subWait[id]; ok {
			ch <- nil
		}
		c.subMu.Unlock()
	case PINGRESP:
		// keepalive satisfied
	default:
		c.fail(fmt.Errorf("%w: unexpected %v", ErrMalformed, hdr.Type))
		return false
	}
	return true
}

func (c *Client) pingLoop() {
	t := time.NewTicker(c.opts.KeepAlive)
	defer t.Stop()
	for {
		select {
		case <-t.C:
			c.writeMu.Lock()
			err := encodeEmpty(c.conn, PINGREQ)
			c.writeMu.Unlock()
			if err != nil {
				c.fail(err)
				return
			}
		case <-c.done:
			return
		}
	}
}
