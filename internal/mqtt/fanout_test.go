package mqtt

import (
	"bytes"
	"fmt"
	"sync/atomic"
	"testing"
)

// TestFanoutEncodesOnce checks that a message fanned out to N same-QoS
// subscribers is encoded once and shared: N-1 deliveries count as
// encode-once hits, and every subscriber still receives identical bytes.
func TestFanoutEncodesOnce(t *testing.T) {
	b := newTestBroker(t)
	const subs = 4
	payload := []byte(`{"node":1,"t0":0,"dt":0.02,"p":[400,400,400]}`)
	var received [subs]atomic.Pointer[[]byte]
	for i := 0; i < subs; i++ {
		i := i
		c := dialTest(t, b.Addr(), fmt.Sprintf("fan%d", i), func(m Message) {
			p := append([]byte(nil), m.Payload...)
			received[i].Store(&p)
		})
		if err := c.Subscribe(Subscription{Filter: "davide/+/power", QoS: 0}); err != nil {
			t.Fatal(err)
		}
	}
	pub := dialTest(t, b.Addr(), "fan-pub", nil)
	if err := pub.Publish("davide/node01/power", payload, 0, false); err != nil {
		t.Fatal(err)
	}
	waitFor(t, func() bool {
		for i := range received {
			if received[i].Load() == nil {
				return false
			}
		}
		return true
	}, "fan-out delivery")
	for i := range received {
		if got := *received[i].Load(); !bytes.Equal(got, payload) {
			t.Errorf("subscriber %d payload corrupted: %q", i, got)
		}
	}
	if hits := b.Stats.FanoutEncodedOnce.Load(); hits != subs-1 {
		t.Errorf("FanoutEncodedOnce = %d, want %d (one encoding shared by %d subscribers)",
			hits, subs-1, subs)
	}
}

// TestMixedQoSFanoutSharesPerClass: QoS-0 and QoS-1 subscribers need
// different encodings (packet ID), but subscribers within a class share.
func TestMixedQoSFanoutSharesPerClass(t *testing.T) {
	b := newTestBroker(t)
	var n atomic.Int64
	mk := func(id string, qos byte) {
		c := dialTest(t, b.Addr(), id, func(m Message) { n.Add(1) })
		if err := c.Subscribe(Subscription{Filter: "t", QoS: qos}); err != nil {
			t.Fatal(err)
		}
	}
	mk("q0a", 0)
	mk("q0b", 0)
	mk("q1a", 1)
	mk("q1b", 1)
	pub := dialTest(t, b.Addr(), "pub", nil)
	if err := pub.Publish("t", []byte("x"), 1, false); err != nil {
		t.Fatal(err)
	}
	waitFor(t, func() bool { return n.Load() == 4 }, "mixed-QoS delivery")
	// 4 subscribers, 2 QoS classes -> 2 encodings, 2 shared deliveries.
	if hits := b.Stats.FanoutEncodedOnce.Load(); hits != 2 {
		t.Errorf("FanoutEncodedOnce = %d, want 2", hits)
	}
}

// TestPooledBufferReuse drives enough packets through broker and client
// that both report read-buffer reuse, and a publisher reports encode
// buffer reuse.
func TestPooledBufferReuse(t *testing.T) {
	b := newTestBroker(t)
	var got atomic.Int64
	sub := dialTest(t, b.Addr(), "sub", func(m Message) { got.Add(1) })
	if err := sub.Subscribe(Subscription{Filter: "t", QoS: 0}); err != nil {
		t.Fatal(err)
	}
	pub := dialTest(t, b.Addr(), "pub", nil)
	const msgs = 50
	for i := 0; i < msgs; i++ {
		if err := pub.Publish("t", []byte("payload-of-modest-size"), 0, false); err != nil {
			t.Fatal(err)
		}
	}
	waitFor(t, func() bool { return got.Load() == msgs }, "delivery")
	if r := b.Stats.BufReuses.Load(); r == 0 {
		t.Error("broker reported no pooled read-buffer reuse")
	}
	if r := pub.Stats.BufReuses.Load(); r == 0 {
		t.Error("publisher reported no encode-buffer reuse")
	}
	if r := sub.Stats.BufReuses.Load(); r == 0 {
		t.Error("subscriber reported no pooled read-buffer reuse")
	}
}

// TestRetainedSurvivesBufferReuse pins the Clone-on-retain path: the
// retained store must own its payload, not the pooled read buffer it was
// parsed from.
func TestRetainedSurvivesBufferReuse(t *testing.T) {
	b := newTestBroker(t)
	pub := dialTest(t, b.Addr(), "pub", nil)
	if err := pub.Publish("davide/node05/energy", []byte(`{"j":123.5}`), 1, true); err != nil {
		t.Fatal(err)
	}
	// Churn the pool with different payloads through the same session.
	for i := 0; i < 20; i++ {
		if err := pub.Publish("davide/node05/power", bytes.Repeat([]byte{byte('A' + i)}, 64), 1, false); err != nil {
			t.Fatal(err)
		}
	}
	var got atomic.Pointer[Message]
	sub := dialTest(t, b.Addr(), "late", func(m Message) {
		c := m.Clone()
		got.Store(&c)
	})
	if err := sub.Subscribe(Subscription{Filter: "davide/+/energy", QoS: 1}); err != nil {
		t.Fatal(err)
	}
	waitFor(t, func() bool { return got.Load() != nil }, "retained delivery")
	if m := got.Load(); !m.Retained || string(m.Payload) != `{"j":123.5}` {
		t.Errorf("retained payload corrupted by buffer reuse: %+v", m)
	}
}
