package mqtt

import (
	"errors"
	"sync/atomic"
	"testing"
	"time"
)

// testLink drops every second QoS-0 publish and holds every third,
// releasing holds on Flush — a minimal interceptor exercising every
// branch of the Link contract (drop, pass, buffer+clone, flush).
type testLink struct {
	n      int
	held   []Message
	sent   int
	passed int
}

func (l *testLink) Send(m Message, deliver DeliverFunc) error {
	if m.QoS != 0 {
		return deliver(m)
	}
	l.n++
	l.sent++
	switch l.n % 3 {
	case 0:
		l.held = append(l.held, m.Clone())
		return nil
	case 1:
		return nil // drop
	default:
		l.passed++
		return deliver(m)
	}
}

func (l *testLink) Flush(deliver DeliverFunc) error {
	for _, m := range l.held {
		if err := deliver(m); err != nil {
			return err
		}
		l.passed++
	}
	l.held = nil
	return nil
}

func TestClientLinkInterceptsPublishes(t *testing.T) {
	b, err := NewBroker("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()

	var got atomic.Int64
	sub, err := Dial(b.Addr(), ClientOptions{
		ClientID:  "sub",
		OnMessage: func(Message) { got.Add(1) },
	})
	if err != nil {
		t.Fatal(err)
	}
	defer sub.Close()
	if err := sub.Subscribe(Subscription{Filter: "t/#"}); err != nil {
		t.Fatal(err)
	}

	link := &testLink{}
	pub, err := Dial(b.Addr(), ClientOptions{ClientID: "pub", Link: link})
	if err != nil {
		t.Fatal(err)
	}
	defer pub.Close()

	const n = 9
	for i := 0; i < n; i++ {
		if err := pub.Publish("t/p", []byte{byte(i)}, 0, false); err != nil {
			t.Fatal(err)
		}
	}
	// QoS-1 bypasses the link's QoS-0 logic but still flows through Send.
	if err := pub.Publish("t/q1", []byte("billing"), 1, false); err != nil {
		t.Fatal(err)
	}
	if link.sent != n {
		t.Fatalf("link saw %d QoS-0 publishes, want %d", link.sent, n)
	}
	if len(link.held) != n/3 {
		t.Fatalf("link holds %d, want %d", len(link.held), n/3)
	}
	if err := pub.Flush(); err != nil {
		t.Fatal(err)
	}
	if len(link.held) != 0 {
		t.Fatalf("flush left %d held", len(link.held))
	}
	// Wire publishes: passed QoS-0 (2 of each 3 minus drops = 3 passed +
	// 3 flushed) + 1 QoS-1.
	wantWire := int64(link.passed + 1)
	deadline := time.Now().Add(5 * time.Second)
	for got.Load() < wantWire && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if got.Load() != wantWire {
		t.Fatalf("subscriber got %d messages, want %d", got.Load(), wantWire)
	}
	if pubs := pub.Stats.Publishes.Load(); pubs != wantWire {
		t.Fatalf("client counted %d wire publishes, want %d", pubs, wantWire)
	}
}

func TestClientAbortDrainsBeforeReturning(t *testing.T) {
	b, err := NewBroker("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()

	var got atomic.Int64
	sub, err := Dial(b.Addr(), ClientOptions{ClientID: "sub", OnMessage: func(Message) { got.Add(1) }})
	if err != nil {
		t.Fatal(err)
	}
	defer sub.Close()
	if err := sub.Subscribe(Subscription{Filter: "#"}); err != nil {
		t.Fatal(err)
	}

	c, err := Dial(b.Addr(), ClientOptions{ClientID: "crashy"})
	if err != nil {
		t.Fatal(err)
	}
	const n = 200
	for i := 0; i < n; i++ {
		if err := c.Publish("t/x", []byte("payload-still-in-flight"), 0, false); err != nil {
			t.Fatal(err)
		}
	}
	c.Abort()
	// Abort returns only after the broker consumed the stream and tore
	// the session down: everything already written must have been
	// routed, and the session must be gone (no takeover discard when a
	// same-ID client redials immediately).
	if !errors.Is(c.Err(), ErrAborted) {
		t.Fatalf("Err = %v, want ErrAborted", c.Err())
	}
	select {
	case <-c.Done():
	default:
		t.Fatal("Done not closed after Abort")
	}
	if in := b.Stats.PublishesIn.Load(); in != n {
		t.Fatalf("broker ingested %d publishes before Abort returned, want %d", in, n)
	}
	c2, err := Dial(b.Addr(), ClientOptions{ClientID: "crashy"})
	if err != nil {
		t.Fatal(err)
	}
	defer c2.Close()
	if err := c2.Publish("t/x", []byte("after reboot"), 0, false); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for got.Load() < n+1 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if got.Load() != n+1 {
		t.Fatalf("subscriber got %d, want %d (pre-crash stream lost?)", got.Load(), n+1)
	}
	// Second Abort (and Abort after Close) is a no-op.
	c.Abort()
}

func TestBrokerKick(t *testing.T) {
	b, err := NewBroker("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()

	c, err := Dial(b.Addr(), ClientOptions{ClientID: "victim"})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if !b.Kick("victim") {
		t.Fatal("Kick(victim) = false, want true")
	}
	select {
	case <-c.Done():
	case <-time.After(5 * time.Second):
		t.Fatal("client did not observe broker-side kick")
	}
	if b.Kick("nobody") {
		t.Fatal("Kick(nobody) = true, want false")
	}
	// The broker deregisters a session in its serveConn defer, which
	// runs asynchronously after the conn closes — wait until the victim
	// is gone so KickAll below counts only the three fresh sessions.
	deadline := time.Now().Add(5 * time.Second)
	for b.Kick("victim") {
		if time.Now().After(deadline) {
			t.Fatal("victim session never deregistered")
		}
		time.Sleep(time.Millisecond)
	}

	// KickAll: a broker hiccup every peer observes; reconnect works.
	var clients []*Client
	for _, id := range []string{"a", "b", "c"} {
		cl, err := Dial(b.Addr(), ClientOptions{ClientID: id})
		if err != nil {
			t.Fatal(err)
		}
		defer cl.Close()
		clients = append(clients, cl)
	}
	if n := b.KickAll(); n != 3 {
		t.Fatalf("KickAll closed %d sessions, want 3", n)
	}
	for _, cl := range clients {
		select {
		case <-cl.Done():
		case <-time.After(5 * time.Second):
			t.Fatal("client did not observe hiccup")
		}
	}
	again, err := Dial(b.Addr(), ClientOptions{ClientID: "a"})
	if err != nil {
		t.Fatalf("reconnect after hiccup: %v", err)
	}
	defer again.Close()
	if err := again.Publish("t/x", []byte("back"), 0, false); err != nil {
		t.Fatal(err)
	}
}
