package mqtt

import (
	"bufio"
	"fmt"
	"io"
	"log"
	"net"
	"sync"
	"sync/atomic"
	"time"
)

// BrokerStats counts broker activity; all fields are updated atomically.
type BrokerStats struct {
	Connections   atomic.Int64 // currently connected clients
	TotalConnects atomic.Int64
	PublishesIn   atomic.Int64
	PublishesOut  atomic.Int64
	BytesIn       atomic.Int64
	BytesOut      atomic.Int64
	Dropped       atomic.Int64 // messages dropped on slow subscribers
	// FanoutEncodedOnce counts deliveries that shared a PUBLISH encoding
	// produced for an earlier subscriber of the same message (the
	// encode-once fan-out hit rate: out of N matching subscribers, up to
	// N-1 deliveries reuse the first encoding).
	FanoutEncodedOnce atomic.Int64
	// BufReuses counts packet read-buffer requests served from an
	// already-grown pooled buffer instead of a fresh allocation.
	BufReuses atomic.Int64
}

// Broker is an MQTT 3.1.1 broker: the role mosquitto plays on the
// D.A.V.I.D.E. management node, receiving gateway telemetry and fanning it
// out to subscriber agents.
type Broker struct {
	ln       net.Listener
	mu       sync.RWMutex
	sessions map[string]*session // by client ID
	retained map[string]*PublishPacket
	closed   atomic.Bool
	wg       sync.WaitGroup
	Stats    BrokerStats
	// QueueDepth is the per-subscriber outbound buffer; a full buffer
	// drops QoS-0 messages (matching mosquitto's max_queued_messages
	// behaviour) rather than stalling the whole broker.
	QueueDepth int
	// Trace, when set, observes every inbound publish once before
	// fan-out (the obs fan-out stage stamp). The broker stays
	// payload-agnostic: the hook owns any decoding. Set it before
	// clients start publishing; the payload is only valid for the
	// duration of the call.
	Trace func(topic string, payload []byte)
	logf  func(format string, args ...any)
	// bufs pools per-packet read buffers across all session readers.
	bufs bufPool
}

// NewBroker listens on addr (e.g. "127.0.0.1:0") and starts serving.
func NewBroker(addr string) (*Broker, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("mqtt: listen: %w", err)
	}
	b := &Broker{
		ln:         ln,
		sessions:   make(map[string]*session),
		retained:   make(map[string]*PublishPacket),
		QueueDepth: 1024,
		logf:       func(string, ...any) {},
	}
	b.bufs.reuses = &b.Stats.BufReuses
	b.wg.Add(1)
	go b.acceptLoop()
	return b, nil
}

// SetLogger installs a debug logger (nil disables logging).
func (b *Broker) SetLogger(l *log.Logger) {
	if l == nil {
		b.logf = func(string, ...any) {}
		return
	}
	b.logf = l.Printf
}

// Addr returns the listening address, useful with port 0.
func (b *Broker) Addr() string { return b.ln.Addr().String() }

// Close stops the broker and disconnects all clients.
func (b *Broker) Close() error {
	if !b.closed.CompareAndSwap(false, true) {
		return nil
	}
	err := b.ln.Close()
	b.mu.Lock()
	for _, s := range b.sessions {
		s.close()
	}
	b.mu.Unlock()
	b.wg.Wait()
	return err
}

func (b *Broker) acceptLoop() {
	defer b.wg.Done()
	for {
		conn, err := b.ln.Accept()
		if err != nil {
			return // listener closed
		}
		b.wg.Add(1)
		go func() {
			defer b.wg.Done()
			b.serve(conn)
		}()
	}
}

// session is one connected client on the broker side.
type session struct {
	id        string
	conn      net.Conn
	out       chan []byte // pre-encoded packets to send
	subs      map[string]byte
	subsMu    sync.RWMutex
	closeOnce sync.Once
	done      chan struct{}
	keepAlive time.Duration
}

func (s *session) close() {
	s.closeOnce.Do(func() {
		close(s.done)
		_ = s.conn.Close()
	})
}

// serve runs one client connection to completion.
func (b *Broker) serve(conn net.Conn) {
	defer func() { _ = conn.Close() }()
	_ = conn.SetReadDeadline(time.Now().Add(10 * time.Second))
	hdr, err := ReadFixedHeader(conn)
	if err != nil || hdr.Type != CONNECT {
		return
	}
	pb := b.bufs.Get(hdr.Length)
	if _, err := io.ReadFull(conn, pb.b); err != nil {
		b.bufs.Put(pb)
		return
	}
	cp, err := decodeConnect(pb.b)
	b.bufs.Put(pb)
	if err != nil {
		_ = encodeConnack(conn, false, ConnRefusedProtocol)
		return
	}
	if cp.ClientID == "" {
		_ = encodeConnack(conn, false, ConnRefusedIdentifier)
		return
	}

	s := &session{
		id:   cp.ClientID,
		conn: conn,
		out:  make(chan []byte, b.QueueDepth),
		subs: make(map[string]byte),
		done: make(chan struct{}),
	}
	if cp.KeepAliveSec > 0 {
		s.keepAlive = time.Duration(cp.KeepAliveSec) * time.Second * 3 / 2
	}

	// A reconnecting client ID takes over the old session.
	b.mu.Lock()
	if old, ok := b.sessions[s.id]; ok {
		old.close()
	}
	b.sessions[s.id] = s
	b.mu.Unlock()
	b.Stats.Connections.Add(1)
	b.Stats.TotalConnects.Add(1)

	defer func() {
		b.mu.Lock()
		if b.sessions[s.id] == s {
			delete(b.sessions, s.id)
		}
		b.mu.Unlock()
		b.Stats.Connections.Add(-1)
		s.close()
	}()

	if err := encodeConnack(conn, false, ConnAccepted); err != nil {
		return
	}
	b.logf("mqtt: client %q connected from %v", s.id, conn.RemoteAddr())

	// Writer goroutine: serialises all outbound traffic for this client.
	// Writes go through a bufio.Writer that is flushed only once the
	// outbound queue drains, so a burst of small packets (fan-out to a
	// fast subscriber, PUBACK trains) coalesces into few syscalls.
	go func() {
		bw := bufio.NewWriterSize(s.conn, 16<<10)
		for {
			select {
			case pkt := <-s.out:
				batched := int64(0)
				for pkt != nil {
					if _, err := bw.Write(pkt); err != nil {
						s.close()
						return
					}
					batched += int64(len(pkt))
					select {
					case pkt = <-s.out:
					default:
						pkt = nil
					}
				}
				if err := bw.Flush(); err != nil {
					s.close()
					return
				}
				// Counted only once the batch reached the socket, so the
				// stat never includes bytes lost in an unflushed buffer.
				b.Stats.BytesOut.Add(batched)
			case <-s.done:
				return
			}
		}
	}()

	// Reader loop. Packet bodies come from the broker-wide buffer pool;
	// every packet is fully handled (or copied, for retained messages)
	// before its buffer is recycled, which is what lets decodePublish
	// borrow the payload instead of copying it.
	for {
		if s.keepAlive > 0 {
			_ = conn.SetReadDeadline(time.Now().Add(s.keepAlive))
		} else {
			_ = conn.SetReadDeadline(time.Time{})
		}
		hdr, err := ReadFixedHeader(conn)
		if err != nil {
			return
		}
		pb := b.bufs.Get(hdr.Length)
		body := pb.b
		if _, err := io.ReadFull(conn, body); err != nil {
			b.bufs.Put(pb)
			return
		}
		b.Stats.BytesIn.Add(int64(2 + hdr.Length))
		ok := b.handle(s, hdr, body)
		b.bufs.Put(pb)
		if !ok {
			return
		}
	}
}

// handle processes one inbound packet; body is only valid for the call.
// It reports whether the session should keep reading.
func (b *Broker) handle(s *session, hdr FixedHeader, body []byte) bool {
	switch hdr.Type {
	case PUBLISH:
		p, err := decodePublish(hdr.Flags, body)
		if err != nil {
			return false
		}
		b.Stats.PublishesIn.Add(1)
		if p.QoS == 1 {
			if err := b.send(s, encodedPuback(p.PacketID)); err != nil {
				return false
			}
		}
		b.route(p)
	case SUBSCRIBE:
		sp, err := decodeSubscribe(body)
		if err != nil {
			return false
		}
		codes := make([]byte, len(sp.Subs))
		s.subsMu.Lock()
		for i, sub := range sp.Subs {
			s.subs[sub.Filter] = sub.QoS
			codes[i] = sub.QoS
		}
		s.subsMu.Unlock()
		if err := b.send(s, encodedSuback(sp.PacketID, codes)); err != nil {
			return false
		}
		b.deliverRetained(s, sp.Subs)
	case UNSUBSCRIBE:
		up, err := decodeUnsubscribe(body)
		if err != nil {
			return false
		}
		s.subsMu.Lock()
		for _, f := range up.Filters {
			delete(s.subs, f)
		}
		s.subsMu.Unlock()
		if err := b.send(s, encodedUnsuback(up.PacketID)); err != nil {
			return false
		}
	case PUBACK:
		// QoS-1 delivery confirmation from a subscriber; our broker
		// delivers at-most-once per connection, so nothing to retry.
	case PINGREQ:
		if err := b.send(s, encodedEmpty(PINGRESP)); err != nil {
			return false
		}
	case DISCONNECT:
		return false
	default:
		return false // protocol violation
	}
	return true
}

// route fans a publish out to every matching subscriber and stores retained
// messages. The outbound packet is encoded at most once per effective QoS
// (the at-most-once delivery id is the constant 1, so every same-QoS
// subscriber can share one immutable byte slice) instead of once per
// subscriber; session writers only ever read the slice.
func (b *Broker) route(p *PublishPacket) {
	if b.Trace != nil {
		b.Trace(p.Topic, p.Payload)
	}
	if p.Retain {
		b.mu.Lock()
		if len(p.Payload) == 0 {
			delete(b.retained, p.Topic)
		} else {
			// The payload borrows from a pooled read buffer: the retained
			// store outlives the read cycle, so it keeps a deep copy.
			cp := p.Clone()
			cp.Dup = false
			b.retained[p.Topic] = cp
		}
		b.mu.Unlock()
	}
	b.mu.RLock()
	targets := make([]*session, 0, len(b.sessions))
	qos := make([]byte, 0, len(b.sessions))
	for _, s := range b.sessions {
		s.subsMu.RLock()
		best, ok := byte(0), false
		for f, q := range s.subs {
			if TopicMatches(f, p.Topic) {
				ok = true
				if q > best {
					best = q
				}
			}
		}
		s.subsMu.RUnlock()
		if ok {
			targets = append(targets, s)
			qos = append(qos, best)
		}
	}
	b.mu.RUnlock()

	var enc [2][]byte // one shared encoding per effective QoS
	for i, s := range targets {
		q := min(p.QoS, qos[i])
		pkt := enc[q]
		if pkt == nil {
			out := *p
			out.Retain = false
			out.QoS = q
			if q > 0 {
				out.PacketID = 1 // per-connection at-most-once delivery id
			}
			var err error
			pkt, err = appendPublish(nil, &out)
			if err != nil {
				continue
			}
			enc[q] = pkt
		} else {
			b.Stats.FanoutEncodedOnce.Add(1)
		}
		select {
		case s.out <- pkt:
			b.Stats.PublishesOut.Add(1)
		default:
			b.Stats.Dropped.Add(1)
		}
	}
}

// deliverRetained sends retained messages matching fresh subscriptions.
func (b *Broker) deliverRetained(s *session, subs []Subscription) {
	b.mu.RLock()
	var matched []*PublishPacket
	var qos []byte
	for topic, msg := range b.retained {
		for _, sub := range subs {
			if TopicMatches(sub.Filter, topic) {
				matched = append(matched, msg)
				qos = append(qos, min(msg.QoS, sub.QoS))
				break
			}
		}
	}
	b.mu.RUnlock()
	for i, msg := range matched {
		out := *msg
		out.Retain = true
		out.QoS = qos[i]
		if out.QoS > 0 {
			out.PacketID = 1
		}
		pkt, err := appendPublish(nil, &out)
		if err != nil {
			continue
		}
		select {
		case s.out <- pkt:
			b.Stats.PublishesOut.Add(1)
		default:
			b.Stats.Dropped.Add(1)
		}
	}
}

// send enqueues a pre-encoded control packet for the session.
func (b *Broker) send(s *session, pkt []byte) error {
	select {
	case s.out <- pkt:
		return nil
	case <-s.done:
		return io.ErrClosedPipe
	}
}

// Kick abruptly closes the named client's session — no DISCONNECT, the
// connection just dies, as in a broker-side failure. Reports whether a
// session by that ID existed.
func (b *Broker) Kick(clientID string) bool {
	b.mu.RLock()
	s, ok := b.sessions[clientID]
	b.mu.RUnlock()
	if ok {
		s.close()
	}
	return ok
}

// KickAll abruptly closes every connected session (a broker hiccup:
// the process stays up, every peer must reconnect). Returns the number
// of sessions closed.
func (b *Broker) KickAll() int {
	b.mu.RLock()
	victims := make([]*session, 0, len(b.sessions))
	for _, s := range b.sessions {
		victims = append(victims, s)
	}
	b.mu.RUnlock()
	for _, s := range victims {
		s.close()
	}
	return len(victims)
}

// RetainedCount returns the number of retained topics.
func (b *Broker) RetainedCount() int {
	b.mu.RLock()
	defer b.mu.RUnlock()
	return len(b.retained)
}

// Pre-encoded control-packet helpers: direct byte assembly, no
// intermediate writer.

func encodedPuback(id uint16) []byte {
	return []byte{byte(PUBACK) << 4, 2, byte(id >> 8), byte(id)}
}

func encodedSuback(id uint16, codes []byte) []byte {
	body := append([]byte{byte(id >> 8), byte(id)}, codes...)
	pkt, _ := appendPacket(nil, SUBACK, 0, body)
	return pkt
}

func encodedUnsuback(id uint16) []byte {
	return []byte{byte(UNSUBACK) << 4, 2, byte(id >> 8), byte(id)}
}

func encodedEmpty(t PacketType) []byte {
	return []byte{byte(t) << 4, 0}
}

func min(a, b byte) byte {
	if a < b {
		return a
	}
	return b
}
