package mqtt

import (
	"fmt"
	"io"
	"log"
	"net"
	"sync"
	"sync/atomic"
	"time"
)

// BrokerStats counts broker activity; all fields are updated atomically.
type BrokerStats struct {
	Connections   atomic.Int64 // currently connected clients
	TotalConnects atomic.Int64
	PublishesIn   atomic.Int64
	PublishesOut  atomic.Int64
	BytesIn       atomic.Int64
	BytesOut      atomic.Int64
	Dropped       atomic.Int64 // messages dropped on slow subscribers
}

// Broker is an MQTT 3.1.1 broker: the role mosquitto plays on the
// D.A.V.I.D.E. management node, receiving gateway telemetry and fanning it
// out to subscriber agents.
type Broker struct {
	ln       net.Listener
	mu       sync.RWMutex
	sessions map[string]*session // by client ID
	retained map[string]*PublishPacket
	closed   atomic.Bool
	wg       sync.WaitGroup
	Stats    BrokerStats
	// QueueDepth is the per-subscriber outbound buffer; a full buffer
	// drops QoS-0 messages (matching mosquitto's max_queued_messages
	// behaviour) rather than stalling the whole broker.
	QueueDepth int
	logf       func(format string, args ...any)
}

// NewBroker listens on addr (e.g. "127.0.0.1:0") and starts serving.
func NewBroker(addr string) (*Broker, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("mqtt: listen: %w", err)
	}
	b := &Broker{
		ln:         ln,
		sessions:   make(map[string]*session),
		retained:   make(map[string]*PublishPacket),
		QueueDepth: 1024,
		logf:       func(string, ...any) {},
	}
	b.wg.Add(1)
	go b.acceptLoop()
	return b, nil
}

// SetLogger installs a debug logger (nil disables logging).
func (b *Broker) SetLogger(l *log.Logger) {
	if l == nil {
		b.logf = func(string, ...any) {}
		return
	}
	b.logf = l.Printf
}

// Addr returns the listening address, useful with port 0.
func (b *Broker) Addr() string { return b.ln.Addr().String() }

// Close stops the broker and disconnects all clients.
func (b *Broker) Close() error {
	if !b.closed.CompareAndSwap(false, true) {
		return nil
	}
	err := b.ln.Close()
	b.mu.Lock()
	for _, s := range b.sessions {
		s.close()
	}
	b.mu.Unlock()
	b.wg.Wait()
	return err
}

func (b *Broker) acceptLoop() {
	defer b.wg.Done()
	for {
		conn, err := b.ln.Accept()
		if err != nil {
			return // listener closed
		}
		b.wg.Add(1)
		go func() {
			defer b.wg.Done()
			b.serve(conn)
		}()
	}
}

// session is one connected client on the broker side.
type session struct {
	id        string
	conn      net.Conn
	out       chan []byte // pre-encoded packets to send
	subs      map[string]byte
	subsMu    sync.RWMutex
	closeOnce sync.Once
	done      chan struct{}
	keepAlive time.Duration
}

func (s *session) close() {
	s.closeOnce.Do(func() {
		close(s.done)
		_ = s.conn.Close()
	})
}

// serve runs one client connection to completion.
func (b *Broker) serve(conn net.Conn) {
	defer func() { _ = conn.Close() }()
	_ = conn.SetReadDeadline(time.Now().Add(10 * time.Second))
	hdr, err := ReadFixedHeader(conn)
	if err != nil || hdr.Type != CONNECT {
		return
	}
	body := make([]byte, hdr.Length)
	if _, err := io.ReadFull(conn, body); err != nil {
		return
	}
	cp, err := decodeConnect(body)
	if err != nil {
		_ = encodeConnack(conn, false, ConnRefusedProtocol)
		return
	}
	if cp.ClientID == "" {
		_ = encodeConnack(conn, false, ConnRefusedIdentifier)
		return
	}

	s := &session{
		id:   cp.ClientID,
		conn: conn,
		out:  make(chan []byte, b.QueueDepth),
		subs: make(map[string]byte),
		done: make(chan struct{}),
	}
	if cp.KeepAliveSec > 0 {
		s.keepAlive = time.Duration(cp.KeepAliveSec) * time.Second * 3 / 2
	}

	// A reconnecting client ID takes over the old session.
	b.mu.Lock()
	if old, ok := b.sessions[s.id]; ok {
		old.close()
	}
	b.sessions[s.id] = s
	b.mu.Unlock()
	b.Stats.Connections.Add(1)
	b.Stats.TotalConnects.Add(1)

	defer func() {
		b.mu.Lock()
		if b.sessions[s.id] == s {
			delete(b.sessions, s.id)
		}
		b.mu.Unlock()
		b.Stats.Connections.Add(-1)
		s.close()
	}()

	if err := encodeConnack(conn, false, ConnAccepted); err != nil {
		return
	}
	b.logf("mqtt: client %q connected from %v", s.id, conn.RemoteAddr())

	// Writer goroutine: serialises all outbound traffic for this client.
	go func() {
		for {
			select {
			case pkt := <-s.out:
				if _, err := s.conn.Write(pkt); err != nil {
					s.close()
					return
				}
				b.Stats.BytesOut.Add(int64(len(pkt)))
			case <-s.done:
				return
			}
		}
	}()

	// Reader loop.
	for {
		if s.keepAlive > 0 {
			_ = conn.SetReadDeadline(time.Now().Add(s.keepAlive))
		} else {
			_ = conn.SetReadDeadline(time.Time{})
		}
		hdr, err := ReadFixedHeader(conn)
		if err != nil {
			return
		}
		body := make([]byte, hdr.Length)
		if _, err := io.ReadFull(conn, body); err != nil {
			return
		}
		b.Stats.BytesIn.Add(int64(2 + hdr.Length))
		switch hdr.Type {
		case PUBLISH:
			p, err := decodePublish(hdr.Flags, body)
			if err != nil {
				return
			}
			b.Stats.PublishesIn.Add(1)
			if p.QoS == 1 {
				if err := b.send(s, encodedPuback(p.PacketID)); err != nil {
					return
				}
			}
			b.route(p)
		case SUBSCRIBE:
			sp, err := decodeSubscribe(body)
			if err != nil {
				return
			}
			codes := make([]byte, len(sp.Subs))
			s.subsMu.Lock()
			for i, sub := range sp.Subs {
				s.subs[sub.Filter] = sub.QoS
				codes[i] = sub.QoS
			}
			s.subsMu.Unlock()
			if err := b.send(s, encodedSuback(sp.PacketID, codes)); err != nil {
				return
			}
			b.deliverRetained(s, sp.Subs)
		case UNSUBSCRIBE:
			up, err := decodeUnsubscribe(body)
			if err != nil {
				return
			}
			s.subsMu.Lock()
			for _, f := range up.Filters {
				delete(s.subs, f)
			}
			s.subsMu.Unlock()
			if err := b.send(s, encodedUnsuback(up.PacketID)); err != nil {
				return
			}
		case PUBACK:
			// QoS-1 delivery confirmation from a subscriber; our broker
			// delivers at-most-once per connection, so nothing to retry.
		case PINGREQ:
			if err := b.send(s, encodedEmpty(PINGRESP)); err != nil {
				return
			}
		case DISCONNECT:
			return
		default:
			return // protocol violation
		}
	}
}

// route fans a publish out to every matching subscriber and stores retained
// messages.
func (b *Broker) route(p *PublishPacket) {
	if p.Retain {
		b.mu.Lock()
		if len(p.Payload) == 0 {
			delete(b.retained, p.Topic)
		} else {
			cp := *p
			cp.Dup = false
			b.retained[p.Topic] = &cp
		}
		b.mu.Unlock()
	}
	b.mu.RLock()
	targets := make([]*session, 0, len(b.sessions))
	qos := make([]byte, 0, len(b.sessions))
	for _, s := range b.sessions {
		s.subsMu.RLock()
		best, ok := byte(0), false
		for f, q := range s.subs {
			if TopicMatches(f, p.Topic) {
				ok = true
				if q > best {
					best = q
				}
			}
		}
		s.subsMu.RUnlock()
		if ok {
			targets = append(targets, s)
			qos = append(qos, best)
		}
	}
	b.mu.RUnlock()

	for i, s := range targets {
		out := *p
		out.Retain = false
		out.QoS = min(p.QoS, qos[i])
		if out.QoS > 0 {
			out.PacketID = 1 // per-connection at-most-once delivery id
		}
		pkt, err := encodedPublish(&out)
		if err != nil {
			continue
		}
		select {
		case s.out <- pkt:
			b.Stats.PublishesOut.Add(1)
		default:
			b.Stats.Dropped.Add(1)
		}
	}
}

// deliverRetained sends retained messages matching fresh subscriptions.
func (b *Broker) deliverRetained(s *session, subs []Subscription) {
	b.mu.RLock()
	var matched []*PublishPacket
	var qos []byte
	for topic, msg := range b.retained {
		for _, sub := range subs {
			if TopicMatches(sub.Filter, topic) {
				matched = append(matched, msg)
				qos = append(qos, min(msg.QoS, sub.QoS))
				break
			}
		}
	}
	b.mu.RUnlock()
	for i, msg := range matched {
		out := *msg
		out.Retain = true
		out.QoS = qos[i]
		if out.QoS > 0 {
			out.PacketID = 1
		}
		pkt, err := encodedPublish(&out)
		if err != nil {
			continue
		}
		select {
		case s.out <- pkt:
			b.Stats.PublishesOut.Add(1)
		default:
			b.Stats.Dropped.Add(1)
		}
	}
}

// send enqueues a pre-encoded control packet for the session.
func (b *Broker) send(s *session, pkt []byte) error {
	select {
	case s.out <- pkt:
		return nil
	case <-s.done:
		return io.ErrClosedPipe
	}
}

// RetainedCount returns the number of retained topics.
func (b *Broker) RetainedCount() int {
	b.mu.RLock()
	defer b.mu.RUnlock()
	return len(b.retained)
}

// Pre-encoded packet helpers (encode into a byte slice).

type sliceWriter struct{ buf []byte }

func (w *sliceWriter) Write(p []byte) (int, error) {
	w.buf = append(w.buf, p...)
	return len(p), nil
}

func encodedPuback(id uint16) []byte {
	var w sliceWriter
	_ = encodePuback(&w, id)
	return w.buf
}

func encodedSuback(id uint16, codes []byte) []byte {
	var w sliceWriter
	_ = encodeSuback(&w, id, codes)
	return w.buf
}

func encodedUnsuback(id uint16) []byte {
	var w sliceWriter
	_ = encodeUnsuback(&w, id)
	return w.buf
}

func encodedEmpty(t PacketType) []byte {
	var w sliceWriter
	_ = encodeEmpty(&w, t)
	return w.buf
}

func encodedPublish(p *PublishPacket) ([]byte, error) {
	var w sliceWriter
	if err := p.encode(&w); err != nil {
		return nil, err
	}
	return w.buf, nil
}

func min(a, b byte) byte {
	if a < b {
		return a
	}
	return b
}
