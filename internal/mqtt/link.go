package mqtt

// DeliverFunc writes one application message to the wire with the
// client's normal publish semantics (QoS-1 calls block until PUBACK).
// The message payload is copied into the client's write buffer before
// the call returns, so a caller that passed a borrowed or reused
// payload may recycle it immediately afterwards.
type DeliverFunc func(Message) error

// Link intercepts a client's outbound application messages before they
// reach the wire — the seam fault-injection harnesses (internal/chaos)
// hook into. A client with a Link routes every Publish call through
// Send; deliver performs the real publish.
//
// Contract:
//
//   - Send may call deliver zero times (drop), once (pass-through), or
//     several times (duplicate), with the original or a mutated copy
//     (corruption), and may buffer messages for later Send or Flush
//     calls (reordering/delay). A buffered message must be cloned —
//     the payload is only valid for the duration of the Send call.
//   - deliver must only be invoked from within Send or Flush; it is
//     bound to the client the call came through, so a link survives
//     session teardown/reconnect (the next Send arrives with the new
//     client's deliver).
//   - An error returned by Send propagates to the Publish caller; the
//     injected chaos.ErrCrash rides this path to simulate a session
//     crash mid-stream.
//
// Links must be safe for use from one publisher goroutine at a time
// (the MQTT client does not add locking around Send).
type Link interface {
	Send(m Message, deliver DeliverFunc) error
	// Flush delivers every message the link is still holding back.
	// Callers flush after a publish window completes so delayed
	// messages are not stranded.
	Flush(deliver DeliverFunc) error
}
