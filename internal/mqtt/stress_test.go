package mqtt

import (
	"bytes"
	"fmt"
	"net"
	"strings"
	"sync/atomic"
	"testing"
	"testing/quick"
	"time"
)

// TestSlowSubscriberDropsNotBlocks: a subscriber that never reads must not
// stall the broker; QoS-0 messages to it are dropped once its queue fills
// (mosquitto's max_queued_messages behaviour), while other subscribers
// keep receiving.
func TestSlowSubscriberDropsNotBlocks(t *testing.T) {
	if testing.Short() {
		t.Skip("stress test: skipped in -short")
	}
	b, err := NewBroker("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = b.Close() }()
	b.QueueDepth = 8 // tiny queue to force drops quickly

	// The slow subscriber: raw TCP, completes CONNECT+SUBSCRIBE, then
	// never reads again.
	conn, err := net.Dial("tcp", b.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = conn.Close() }()
	if err := (&ConnectPacket{ClientID: "sloth", CleanSession: true}).encode(conn); err != nil {
		t.Fatal(err)
	}
	hdr, err := ReadFixedHeader(conn)
	if err != nil || hdr.Type != CONNACK {
		t.Fatal(err, hdr)
	}
	if _, err := conn.Read(make([]byte, hdr.Length)); err != nil {
		t.Fatal(err)
	}
	if err := (&SubscribePacket{PacketID: 1, Subs: []Subscription{{Filter: "#", QoS: 0}}}).encode(conn); err != nil {
		t.Fatal(err)
	}
	// Drain the SUBACK then stop reading forever.
	hdr, err = ReadFixedHeader(conn)
	if err != nil || hdr.Type != SUBACK {
		t.Fatal(err, hdr)
	}
	if _, err := conn.Read(make([]byte, hdr.Length)); err != nil {
		t.Fatal(err)
	}

	// A healthy subscriber on the same topic.
	var healthy atomic.Int64
	good := dialTest(t, b.Addr(), "healthy", func(Message) { healthy.Add(1) })
	if err := good.Subscribe(Subscription{Filter: "#", QoS: 0}); err != nil {
		t.Fatal(err)
	}

	pub := dialTest(t, b.Addr(), "pub", nil)
	payload := bytes.Repeat([]byte("x"), 4096)
	const msgs = 2000
	// QoS 1 paces the publisher on broker PUBACKs, so the healthy
	// subscriber's queue keeps up while the sloth's TCP pipe clogs.
	for i := 0; i < msgs; i++ {
		if err := pub.Publish("flood/topic", payload, 1, false); err != nil {
			t.Fatal(err)
		}
	}
	waitFor(t, func() bool { return healthy.Load() == msgs }, "healthy subscriber delivery")
	waitFor(t, func() bool { return b.Stats.Dropped.Load() > 0 }, "drops on the slow subscriber")
}

// TestLargePayloadRoundTrip exercises multi-byte remaining-length framing
// end to end.
func TestLargePayloadRoundTrip(t *testing.T) {
	if testing.Short() {
		t.Skip("stress test: skipped in -short")
	}
	b := newTestBroker(t)
	got := make(chan Message, 1)
	sub := dialTest(t, b.Addr(), "sub", func(m Message) { got <- m.Clone() })
	if err := sub.Subscribe(Subscription{Filter: "big", QoS: 1}); err != nil {
		t.Fatal(err)
	}
	pub := dialTest(t, b.Addr(), "pub", nil)
	payload := bytes.Repeat([]byte{0xA5}, 300_000) // needs 3-byte remaining length
	if err := pub.Publish("big", payload, 1, false); err != nil {
		t.Fatal(err)
	}
	select {
	case m := <-got:
		if !bytes.Equal(m.Payload, payload) {
			t.Error("large payload corrupted in transit")
		}
	case <-time.After(5 * time.Second):
		t.Fatal("large payload never delivered")
	}
}

// TestManyRetainedTopics checks retained-store behaviour at scale: one
// late subscriber receives the retained value of every node topic.
func TestManyRetainedTopics(t *testing.T) {
	if testing.Short() {
		t.Skip("stress test: skipped in -short")
	}
	b := newTestBroker(t)
	pub := dialTest(t, b.Addr(), "pub", nil)
	const topics = 45
	for i := 0; i < topics; i++ {
		if err := pub.Publish(fmt.Sprintf("davide/node%02d/energy", i), []byte("42"), 1, true); err != nil {
			t.Fatal(err)
		}
	}
	waitFor(t, func() bool { return b.RetainedCount() == topics }, "retained store fill")
	var got atomic.Int64
	late := dialTest(t, b.Addr(), "late", func(m Message) {
		if m.Retained {
			got.Add(1)
		}
	})
	if err := late.Subscribe(Subscription{Filter: "davide/+/energy", QoS: 1}); err != nil {
		t.Fatal(err)
	}
	waitFor(t, func() bool { return got.Load() == topics }, "all retained values")
}

// Property: every valid concrete topic matches itself as a filter, and is
// matched by "#".
func TestTopicSelfMatchProperty(t *testing.T) {
	f := func(levelsRaw []byte) bool {
		// Build a topic from arbitrary bytes, sanitising into valid
		// levels (non-wildcard, non-NUL, non-slash).
		var levels []string
		for _, c := range levelsRaw {
			if len(levels) >= 6 {
				break
			}
			ch := rune('a' + c%26)
			levels = append(levels, strings.Repeat(string(ch), int(c%3)+1))
		}
		if len(levels) == 0 {
			levels = []string{"x"}
		}
		topic := strings.Join(levels, "/")
		if err := ValidateTopicName(topic); err != nil {
			return false
		}
		return TopicMatches(topic, topic) && TopicMatches("#", topic)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// Property: a single-level "+" wildcard substituted at any level of a
// topic still matches it.
func TestPlusWildcardProperty(t *testing.T) {
	f := func(a, b, c byte, pos uint8) bool {
		levels := []string{
			string(rune('a' + a%26)),
			string(rune('a' + b%26)),
			string(rune('a' + c%26)),
		}
		topic := strings.Join(levels, "/")
		i := int(pos) % 3
		withPlus := make([]string, 3)
		copy(withPlus, levels)
		withPlus[i] = "+"
		return TopicMatches(strings.Join(withPlus, "/"), topic)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}
