package mqtt

// Bridge is a broker-to-broker uplink session: it subscribes to a set of
// topic filters on a source broker (a per-rack broker in the tiered
// fabric) and republishes every matching message onto a target broker
// (the spine aggregator). The design is mosquitto's bridge connection
// scaled down to this codebase's seams:
//
//   - the source side is an ordinary subscriber session, so it rides the
//     broker's encode-once fan-out like any other consumer;
//   - the uplink side is an ordinary publisher client, so the existing
//     Link seam injects faults on the rack→spine hop exactly the way it
//     does on the gateway→rack hop (internal/chaos plugs in unchanged);
//   - a bounded queue decouples the two, with explicit backpressure
//     accounting instead of unbounded buffering.
//
// Messages flow through one forward goroutine, so the per-topic (and
// therefore per-node) publish order of the source broker is preserved on
// the uplink — the property rack-parallel determinism rests on.
//
// Failure handling: any uplink publish error — a spine Kick, a severed
// connection, or an injected chaos.ErrCrash — tears the uplink session
// down, redials it, and retries the same message, so a bridged sample is
// never dropped by a transient uplink failure (at-least-once; exact
// duplicate timestamps overwrite at the store). If the source session
// dies, the bridge redials and resubscribes; messages routed by the
// source broker while the bridge was away are gone (normal MQTT
// semantics for a lost subscriber) and show up only in the redial
// counter.
//
// Retained state: live routing clears the RETAIN flag ([MQTT-3.3.1-9]),
// so retained messages cross the uplink flagged only when the bridge
// (re)subscribes and the source broker replays its retained store — a
// bridge reconnect therefore seeds the spine's retained topics, the same
// snapshot-on-attach behaviour mosquitto bridges rely on.

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"time"
)

// ErrBridgeClosed is returned by operations on a closed bridge.
var ErrBridgeClosed = errors.New("mqtt: bridge closed")

// BridgeOptions configures NewBridge. Source and UplinkID default from
// Name; Filters must be non-empty.
type BridgeOptions struct {
	// Name is the bridge identity: client IDs default to Name+"-src" on
	// the source broker and Name+"-up" on the target broker.
	Name string
	// Filters are the subscriptions forwarded across the uplink.
	Filters []Subscription
	// QueueDepth bounds the decoupling queue between the source reader
	// and the uplink publisher. A full queue drops the incoming message
	// and counts it (Stats.Dropped) — explicit backpressure, mirroring
	// the broker's own QoS-0 session-queue policy. Default 4096.
	QueueDepth int
	// ForceQoS1 upgrades QoS-0 messages to QoS 1 on the uplink: every
	// forward then blocks for a PUBACK, which makes the bridge lossless
	// across uplink teardown (at the cost of per-message latency and
	// possible duplicates, which the store's timestamp dedup absorbs).
	ForceQoS1 bool
	// Link, when non-nil, intercepts uplink publishes — the chaos seam
	// for rack→spine faults. The link outlives uplink redials, exactly
	// as it outlives client reconnects on the gateway hop.
	Link Link
	// RedialWait paces reconnect attempts (default 10 ms).
	RedialWait time.Duration
	// OnForward, when set, observes every message after it is
	// successfully published on the uplink (the obs uplink stage
	// stamp). The payload is only valid for the duration of the call.
	OnForward func(topic string, payload []byte)
}

func (o BridgeOptions) withDefaults() (BridgeOptions, error) {
	if o.Name == "" {
		return o, errors.New("mqtt: bridge name required")
	}
	if len(o.Filters) == 0 {
		return o, errors.New("mqtt: bridge needs at least one filter")
	}
	if o.QueueDepth <= 0 {
		o.QueueDepth = 4096
	}
	if o.RedialWait <= 0 {
		o.RedialWait = 10 * time.Millisecond
	}
	return o, nil
}

// BridgeStats is a snapshot of a bridge's traffic accounting.
type BridgeStats struct {
	Forwarded      int64 // messages handed to the uplink publish path
	ForwardedBytes int64 // payload bytes of those messages
	Dropped        int64 // backpressure: enqueue attempts against a full queue
	Retries        int64 // uplink publishes retried after an error
	UplinkRedials  int64 // uplink sessions redialed after a failure
	SourceRedials  int64 // source sessions redialed after a failure
	HighWater      int64 // max queue occupancy observed
}

// queuedMsg is one buffered message; payload points into a pooled buffer
// owned by the forward goroutine until it recycles it.
type queuedMsg struct {
	topic    string
	payload  *[]byte
	qos      byte
	retained bool
}

// Bridge forwards telemetry from a source broker to a target broker.
// Safe for concurrent inspection; Close is idempotent.
type Bridge struct {
	opts       BridgeOptions
	sourceAddr string
	targetAddr string

	mu  sync.Mutex // guards src/up session swaps
	src *Client
	up  *Client

	q    chan queuedMsg
	bufs sync.Pool // *[]byte payload carriers
	quit chan struct{}
	once sync.Once
	wg   sync.WaitGroup

	accepted  atomic.Int64 // messages enqueued
	completed atomic.Int64 // messages fully forwarded (dequeued + published)

	forwarded      atomic.Int64
	forwardedBytes atomic.Int64
	dropped        atomic.Int64
	retries        atomic.Int64
	upRedials      atomic.Int64
	srcRedials     atomic.Int64
	highWater      atomic.Int64
}

// NewBridge dials both sides and starts forwarding. The uplink comes up
// first so the subscription never sees a message it has nowhere to send.
func NewBridge(sourceAddr, targetAddr string, opts BridgeOptions) (*Bridge, error) {
	opts, err := opts.withDefaults()
	if err != nil {
		return nil, err
	}
	b := &Bridge{
		opts:       opts,
		sourceAddr: sourceAddr,
		targetAddr: targetAddr,
		q:          make(chan queuedMsg, opts.QueueDepth),
		quit:       make(chan struct{}),
	}
	up, err := b.dialUplink()
	if err != nil {
		return nil, err
	}
	b.up = up
	src, err := b.dialSource()
	if err != nil {
		_ = up.Close()
		return nil, err
	}
	b.src = src
	b.wg.Add(2)
	go b.forwardLoop()
	go b.watchSource()
	return b, nil
}

func (b *Bridge) dialUplink() (*Client, error) {
	return Dial(b.targetAddr, ClientOptions{
		ClientID:     b.opts.Name + "-up",
		CleanSession: true,
		Link:         b.opts.Link,
	})
}

func (b *Bridge) dialSource() (*Client, error) {
	c, err := Dial(b.sourceAddr, ClientOptions{
		ClientID:     b.opts.Name + "-src",
		CleanSession: true,
		OnMessage:    b.enqueue,
	})
	if err != nil {
		return nil, err
	}
	if err := c.Subscribe(b.opts.Filters...); err != nil {
		_ = c.Close()
		return nil, err
	}
	return c, nil
}

// enqueue runs on the source client's reader goroutine: copy the borrowed
// payload into a pooled buffer and hand it to the forward goroutine, or
// drop-and-count when the queue is full.
func (b *Bridge) enqueue(m Message) {
	bp, _ := b.bufs.Get().(*[]byte)
	if bp == nil {
		bp = new([]byte)
	}
	*bp = append((*bp)[:0], m.Payload...)
	select {
	case b.q <- queuedMsg{topic: m.Topic, payload: bp, qos: m.QoS, retained: m.Retained}:
		b.accepted.Add(1)
		if depth := int64(len(b.q)); depth > b.highWater.Load() {
			b.highWater.Store(depth) // racy max is fine for a gauge
		}
	default:
		b.dropped.Add(1)
		b.bufs.Put(bp)
	}
}

func (b *Bridge) forwardLoop() {
	defer b.wg.Done()
	for {
		select {
		case m := <-b.q:
			b.forward(m)
			b.bufs.Put(m.payload)
			b.completed.Add(1)
		case <-b.quit:
			return
		}
	}
}

// forward publishes one message on the uplink, redialing and retrying
// until it succeeds or the bridge closes.
func (b *Bridge) forward(m queuedMsg) {
	qos := m.qos
	if b.opts.ForceQoS1 {
		qos = 1
	}
	for attempt := 0; ; attempt++ {
		b.mu.Lock()
		up := b.up
		b.mu.Unlock()
		err := up.Publish(m.topic, *m.payload, qos, m.retained)
		if err == nil {
			b.forwarded.Add(1)
			b.forwardedBytes.Add(int64(len(*m.payload)))
			if b.opts.OnForward != nil {
				b.opts.OnForward(m.topic, *m.payload)
			}
			return
		}
		if b.isClosed() {
			return
		}
		b.retries.Add(1)
		if !b.redialUplink(up) {
			return
		}
	}
}

// redialUplink replaces a failed uplink session. Returns false when the
// bridge closed before a new session came up. The old session is torn
// down with Abort, not Close: Abort waits for the broker to drain the
// aborted stream, so QoS-0 publishes already reported written are read
// before the replacement session (same client ID) triggers the broker's
// takeover — Close here would discard them.
func (b *Bridge) redialUplink(old *Client) bool {
	_ = old.Abort()
	for {
		if b.isClosed() {
			return false
		}
		c, err := b.dialUplink()
		if err == nil {
			b.mu.Lock()
			b.up = c
			b.mu.Unlock()
			b.upRedials.Add(1)
			return true
		}
		select {
		case <-b.quit:
			return false
		case <-time.After(b.opts.RedialWait):
		}
	}
}

// watchSource redials and resubscribes the source session if it dies.
func (b *Bridge) watchSource() {
	defer b.wg.Done()
	for {
		b.mu.Lock()
		src := b.src
		b.mu.Unlock()
		select {
		case <-b.quit:
			return
		case <-src.Done():
			if b.isClosed() {
				return
			}
			for {
				c, err := b.dialSource()
				if err == nil {
					b.mu.Lock()
					b.src = c
					b.mu.Unlock()
					b.srcRedials.Add(1)
					break
				}
				select {
				case <-b.quit:
					return
				case <-time.After(b.opts.RedialWait):
				}
			}
		}
	}
}

func (b *Bridge) isClosed() bool {
	select {
	case <-b.quit:
		return true
	default:
		return false
	}
}

// Drain blocks until every message accepted so far has been forwarded,
// then flushes the uplink Link (releasing any held/delayed messages).
// Call it after the upstream publishers have finished, as Plane.Stream
// does; a racing publisher can re-fill the queue after Drain returns.
func (b *Bridge) Drain(ctx context.Context) error {
	for b.completed.Load() < b.accepted.Load() {
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-b.quit:
			return ErrBridgeClosed
		case <-time.After(500 * time.Microsecond):
		}
	}
	b.mu.Lock()
	up := b.up
	b.mu.Unlock()
	return up.Flush()
}

// Stats snapshots the bridge's counters.
func (b *Bridge) Stats() BridgeStats {
	return BridgeStats{
		Forwarded:      b.forwarded.Load(),
		ForwardedBytes: b.forwardedBytes.Load(),
		Dropped:        b.dropped.Load(),
		Retries:        b.retries.Load(),
		UplinkRedials:  b.upRedials.Load(),
		SourceRedials:  b.srcRedials.Load(),
		HighWater:      b.highWater.Load(),
	}
}

// Add merges another snapshot into this one (plane-level aggregation).
func (s *BridgeStats) Add(o BridgeStats) {
	s.Forwarded += o.Forwarded
	s.ForwardedBytes += o.ForwardedBytes
	s.Dropped += o.Dropped
	s.Retries += o.Retries
	s.UplinkRedials += o.UplinkRedials
	s.SourceRedials += o.SourceRedials
	if o.HighWater > s.HighWater {
		s.HighWater = o.HighWater
	}
}

// Close tears the bridge down: source first (no new input), then the
// forward goroutine, then the uplink. Queued messages are discarded —
// Drain first for a clean handover.
func (b *Bridge) Close() error {
	var err error
	b.once.Do(func() {
		close(b.quit)
		b.mu.Lock()
		src, up := b.src, b.up
		b.mu.Unlock()
		if e := src.Close(); e != nil {
			err = e
		}
		b.wg.Wait()
		if e := up.Close(); e != nil && err == nil {
			err = e
		}
	})
	return err
}
