package mqtt

import (
	"bytes"
	"io"
	"strings"
	"testing"
	"testing/quick"
)

func TestPacketTypeString(t *testing.T) {
	names := map[PacketType]string{
		CONNECT: "CONNECT", CONNACK: "CONNACK", PUBLISH: "PUBLISH",
		PUBACK: "PUBACK", SUBSCRIBE: "SUBSCRIBE", SUBACK: "SUBACK",
		UNSUBSCRIBE: "UNSUBSCRIBE", UNSUBACK: "UNSUBACK",
		PINGREQ: "PINGREQ", PINGRESP: "PINGRESP", DISCONNECT: "DISCONNECT",
	}
	for p, want := range names {
		if p.String() != want {
			t.Errorf("String = %q, want %q", p.String(), want)
		}
	}
	if !strings.Contains(PacketType(0).String(), "0") {
		t.Error("unknown type should include number")
	}
}

func TestRemainingLengthRoundTrip(t *testing.T) {
	for _, n := range []int{0, 1, 127, 128, 16383, 16384, 2097151, 2097152, 268435455} {
		var buf bytes.Buffer
		if err := writeRemainingLength(&buf, n); err != nil {
			t.Fatalf("write %d: %v", n, err)
		}
		got, err := readRemainingLength(&buf)
		if err != nil {
			t.Fatalf("read %d: %v", n, err)
		}
		if got != n {
			t.Errorf("round trip %d -> %d", n, got)
		}
	}
	var buf bytes.Buffer
	if err := writeRemainingLength(&buf, -1); err == nil {
		t.Error("negative length should error")
	}
	if err := writeRemainingLength(&buf, 268435456); err == nil {
		t.Error("overlong length should error")
	}
	// 5 continuation bytes is malformed.
	bad := bytes.NewReader([]byte{0x80, 0x80, 0x80, 0x80, 0x01})
	if _, err := readRemainingLength(byteReader{bad}); err == nil {
		t.Error("5-byte length should error")
	}
}

func TestConnectRoundTrip(t *testing.T) {
	p := &ConnectPacket{ClientID: "gateway-node07", KeepAliveSec: 30, CleanSession: true}
	var buf bytes.Buffer
	if err := p.encode(&buf); err != nil {
		t.Fatal(err)
	}
	hdr, err := ReadFixedHeader(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if hdr.Type != CONNECT {
		t.Fatalf("type = %v", hdr.Type)
	}
	body := make([]byte, hdr.Length)
	if _, err := io.ReadFull(&buf, body); err != nil {
		t.Fatal(err)
	}
	got, err := decodeConnect(body)
	if err != nil {
		t.Fatal(err)
	}
	if got.ClientID != p.ClientID || got.KeepAliveSec != p.KeepAliveSec || got.CleanSession != p.CleanSession {
		t.Errorf("round trip = %+v, want %+v", got, p)
	}
}

func TestConnectDecodeErrors(t *testing.T) {
	if _, err := decodeConnect(nil); err == nil {
		t.Error("empty body should error")
	}
	// Wrong protocol name.
	var buf bytes.Buffer
	_ = writeString(&buf, "HTTP")
	buf.Write([]byte{4, 0, 0, 0})
	if _, err := decodeConnect(buf.Bytes()); err == nil {
		t.Error("wrong protocol should error")
	}
	// Bad protocol level.
	buf.Reset()
	_ = writeString(&buf, "MQTT")
	buf.Write([]byte{9, 0, 0, 0, 0, 0})
	if _, err := decodeConnect(buf.Bytes()); err == nil {
		t.Error("bad level should error")
	}
}

func TestConnackRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	if err := encodeConnack(&buf, true, ConnAccepted); err != nil {
		t.Fatal(err)
	}
	hdr, err := ReadFixedHeader(&buf)
	if err != nil || hdr.Type != CONNACK {
		t.Fatal(err, hdr)
	}
	body := make([]byte, hdr.Length)
	_, _ = io.ReadFull(&buf, body)
	sp, code, err := decodeConnack(body)
	if err != nil || !sp || code != ConnAccepted {
		t.Errorf("decode = %v,%v,%v", sp, code, err)
	}
	if _, _, err := decodeConnack([]byte{1}); err == nil {
		t.Error("short connack should error")
	}
}

func TestPublishRoundTrip(t *testing.T) {
	cases := []*PublishPacket{
		{Topic: "davide/node01/power", Payload: []byte("1890.5"), QoS: 0},
		{Topic: "davide/node01/power", Payload: []byte("x"), QoS: 1, PacketID: 77},
		{Topic: "a/b", Payload: nil, QoS: 0, Retain: true},
		{Topic: "a", Payload: bytes.Repeat([]byte{0xAB}, 10000), QoS: 1, PacketID: 65535, Dup: true},
	}
	for _, p := range cases {
		var buf bytes.Buffer
		if err := p.encode(&buf); err != nil {
			t.Fatalf("%+v: %v", p, err)
		}
		hdr, err := ReadFixedHeader(&buf)
		if err != nil || hdr.Type != PUBLISH {
			t.Fatal(err, hdr)
		}
		body := make([]byte, hdr.Length)
		_, _ = io.ReadFull(&buf, body)
		got, err := decodePublish(hdr.Flags, body)
		if err != nil {
			t.Fatal(err)
		}
		if got.Topic != p.Topic || !bytes.Equal(got.Payload, p.Payload) ||
			got.QoS != p.QoS || got.Retain != p.Retain || got.Dup != p.Dup ||
			(p.QoS > 0 && got.PacketID != p.PacketID) {
			t.Errorf("round trip = %+v, want %+v", got, p)
		}
	}
}

func TestPublishEncodeErrors(t *testing.T) {
	var buf bytes.Buffer
	if err := (&PublishPacket{Topic: "", QoS: 0}).encode(&buf); err == nil {
		t.Error("empty topic should error")
	}
	if err := (&PublishPacket{Topic: "a/+/b", QoS: 0}).encode(&buf); err == nil {
		t.Error("wildcard topic should error")
	}
	if err := (&PublishPacket{Topic: "a", QoS: 2}).encode(&buf); err == nil {
		t.Error("QoS 2 should error")
	}
}

func TestPublishDecodeErrors(t *testing.T) {
	if _, err := decodePublish(0, nil); err == nil {
		t.Error("empty should error")
	}
	if _, err := decodePublish(0x04, []byte{0, 1, 'a'}); err == nil {
		t.Error("QoS 2 flags should error")
	}
	// QoS 1 without packet ID.
	var buf bytes.Buffer
	_ = writeString(&buf, "t")
	if _, err := decodePublish(0x02, buf.Bytes()); err == nil {
		t.Error("missing packet ID should error")
	}
}

func TestSubscribeRoundTrip(t *testing.T) {
	p := &SubscribePacket{PacketID: 9, Subs: []Subscription{
		{Filter: "davide/+/power", QoS: 1},
		{Filter: "davide/#", QoS: 0},
	}}
	var buf bytes.Buffer
	if err := p.encode(&buf); err != nil {
		t.Fatal(err)
	}
	hdr, err := ReadFixedHeader(&buf)
	if err != nil || hdr.Type != SUBSCRIBE || hdr.Flags != 0x02 {
		t.Fatal(err, hdr)
	}
	body := make([]byte, hdr.Length)
	_, _ = io.ReadFull(&buf, body)
	got, err := decodeSubscribe(body)
	if err != nil {
		t.Fatal(err)
	}
	if got.PacketID != 9 || len(got.Subs) != 2 || got.Subs[0] != p.Subs[0] || got.Subs[1] != p.Subs[1] {
		t.Errorf("round trip = %+v", got)
	}
}

func TestSubscribeErrors(t *testing.T) {
	var buf bytes.Buffer
	if err := (&SubscribePacket{PacketID: 1}).encode(&buf); err == nil {
		t.Error("no subs should error")
	}
	if err := (&SubscribePacket{PacketID: 1, Subs: []Subscription{{Filter: "a/#/b"}}}).encode(&buf); err == nil {
		t.Error("bad filter should error")
	}
	if err := (&SubscribePacket{PacketID: 1, Subs: []Subscription{{Filter: "a", QoS: 2}}}).encode(&buf); err == nil {
		t.Error("QoS 2 should error")
	}
	if _, err := decodeSubscribe([]byte{0}); err == nil {
		t.Error("short body should error")
	}
	if _, err := decodeSubscribe([]byte{0, 1}); err == nil {
		t.Error("no filters should error")
	}
}

func TestSubackRoundTrip(t *testing.T) {
	buf := bytes.NewBuffer(encodedSuback(5, []byte{0, 1, SubackFailure}))
	hdr, _ := ReadFixedHeader(buf)
	body := make([]byte, hdr.Length)
	_, _ = io.ReadFull(buf, body)
	id, codes, err := decodeSuback(body)
	if err != nil || id != 5 || len(codes) != 3 || codes[2] != SubackFailure {
		t.Errorf("suback = %v %v %v", id, codes, err)
	}
	if _, _, err := decodeSuback([]byte{0, 1}); err == nil {
		t.Error("suback without codes should error")
	}
}

func TestUnsubscribeRoundTrip(t *testing.T) {
	p := &UnsubscribePacket{PacketID: 3, Filters: []string{"a/b", "c/#"}}
	var buf bytes.Buffer
	if err := p.encode(&buf); err != nil {
		t.Fatal(err)
	}
	hdr, _ := ReadFixedHeader(&buf)
	body := make([]byte, hdr.Length)
	_, _ = io.ReadFull(&buf, body)
	got, err := decodeUnsubscribe(body)
	if err != nil || got.PacketID != 3 || len(got.Filters) != 2 {
		t.Errorf("unsubscribe = %+v %v", got, err)
	}
	if err := (&UnsubscribePacket{PacketID: 1}).encode(&buf); err == nil {
		t.Error("no filters should error")
	}
	if _, err := decodeUnsubscribe([]byte{0, 1}); err == nil {
		t.Error("empty filters should error")
	}
}

func TestValidateTopicName(t *testing.T) {
	good := []string{"a", "a/b/c", "davide/node01/power/cpu0", "/leading", "trailing/"}
	for _, s := range good {
		if err := ValidateTopicName(s); err != nil {
			t.Errorf("ValidateTopicName(%q) = %v", s, err)
		}
	}
	bad := []string{"", "a/+/b", "a/#", "+", "#", "nul\x00byte"}
	for _, s := range bad {
		if err := ValidateTopicName(s); err == nil {
			t.Errorf("ValidateTopicName(%q) should error", s)
		}
	}
}

func TestValidateTopicFilter(t *testing.T) {
	good := []string{"a", "a/b", "+", "#", "a/+/c", "a/#", "+/+/+", "a/+/#"}
	for _, s := range good {
		if err := ValidateTopicFilter(s); err != nil {
			t.Errorf("ValidateTopicFilter(%q) = %v", s, err)
		}
	}
	bad := []string{"", "a/#/b", "#/a", "a+/b", "a/b+", "a/b#", "nul\x00"}
	for _, s := range bad {
		if err := ValidateTopicFilter(s); err == nil {
			t.Errorf("ValidateTopicFilter(%q) should error", s)
		}
	}
}

func TestTopicMatches(t *testing.T) {
	cases := []struct {
		filter, topic string
		want          bool
	}{
		{"a/b/c", "a/b/c", true},
		{"a/b/c", "a/b/d", false},
		{"a/+/c", "a/b/c", true},
		{"a/+/c", "a/b/d", false},
		{"a/#", "a/b/c/d", true},
		{"a/#", "a", true}, // '#' matches the parent level too
		{"#", "anything/at/all", true},
		{"+", "one", true},
		{"+", "one/two", false},
		{"a/+", "a", false},
		{"davide/+/power", "davide/node07/power", true},
		{"davide/+/power", "davide/node07/temp", false},
		{"a/b", "a/b/c", false},
		{"a/b/c", "a/b", false},
	}
	for _, c := range cases {
		if got := TopicMatches(c.filter, c.topic); got != c.want {
			t.Errorf("TopicMatches(%q, %q) = %v, want %v", c.filter, c.topic, got, c.want)
		}
	}
}

func TestFixedHeaderTooLarge(t *testing.T) {
	var buf bytes.Buffer
	buf.WriteByte(byte(PUBLISH) << 4)
	_ = writeRemainingLength(&buf, MaxPacketSize+1)
	if _, err := ReadFixedHeader(&buf); err != ErrPacketTooLarge {
		t.Errorf("err = %v, want ErrPacketTooLarge", err)
	}
}

// Property: remaining-length codec round-trips any valid value.
func TestRemainingLengthProperty(t *testing.T) {
	f := func(raw uint32) bool {
		n := int(raw % 268435456)
		var buf bytes.Buffer
		if err := writeRemainingLength(&buf, n); err != nil {
			return false
		}
		got, err := readRemainingLength(&buf)
		return err == nil && got == n
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

// Property: publish round-trips arbitrary payloads.
func TestPublishRoundTripProperty(t *testing.T) {
	f := func(payload []byte, id uint16, qos bool) bool {
		p := &PublishPacket{Topic: "x/y", Payload: payload, PacketID: id}
		if qos {
			p.QoS = 1
		}
		var buf bytes.Buffer
		if err := p.encode(&buf); err != nil {
			return len(payload) > MaxPacketSize-16
		}
		hdr, err := ReadFixedHeader(&buf)
		if err != nil {
			return false
		}
		body := make([]byte, hdr.Length)
		if _, err := io.ReadFull(&buf, body); err != nil {
			return false
		}
		got, err := decodePublish(hdr.Flags, body)
		if err != nil {
			return false
		}
		return got.Topic == p.Topic && bytes.Equal(got.Payload, p.Payload) && got.QoS == p.QoS
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
