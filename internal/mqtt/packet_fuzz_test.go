package mqtt

import (
	"bytes"
	"io"
	"testing"
)

// FuzzDecodePacket drives the broker/client packet parsers with
// arbitrary byte streams: fixed-header parsing followed by the
// body decoder for whichever packet type the header claims. The
// parsers sit directly behind the TCP socket on both broker and
// client, so they must never panic, and a PUBLISH that decodes
// successfully must survive a re-encode/re-decode round trip
// (corrupt chaos frames and hostile peers lean on exactly this).
func FuzzDecodePacket(f *testing.F) {
	// Seed with one valid encoding of every packet type we speak.
	var buf bytes.Buffer
	cp := ConnectPacket{ClientID: "gw07", KeepAliveSec: 30, CleanSession: true}
	if err := cp.encode(&buf); err != nil {
		f.Fatal(err)
	}
	f.Add(append([]byte(nil), buf.Bytes()...))

	for _, p := range []*PublishPacket{
		{Topic: "davide/node07/power", Payload: []byte(`{"node":7}`)},
		{Topic: "davide/node07/energy", Payload: []byte(`{"j":12.5}`), QoS: 1, PacketID: 9, Retain: true},
		{Topic: "a", Dup: true},
	} {
		pkt, err := appendPublish(nil, p)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(pkt)
	}

	buf.Reset()
	sp := SubscribePacket{PacketID: 3, Subs: []Subscription{{Filter: "davide/+/power"}, {Filter: "#", QoS: 1}}}
	if err := sp.encode(&buf); err != nil {
		f.Fatal(err)
	}
	f.Add(append([]byte(nil), buf.Bytes()...))

	buf.Reset()
	up := UnsubscribePacket{PacketID: 4, Filters: []string{"davide/+/power"}}
	if err := up.encode(&buf); err != nil {
		f.Fatal(err)
	}
	f.Add(append([]byte(nil), buf.Bytes()...))

	buf.Reset()
	if err := encodeConnack(&buf, true, ConnAccepted); err != nil {
		f.Fatal(err)
	}
	f.Add(append([]byte(nil), buf.Bytes()...))

	f.Add(encodedPuback(7))
	f.Add(encodedSuback(8, []byte{0, 1, SubackFailure}))
	f.Add(encodedUnsuback(9))
	f.Add(encodedEmpty(PINGREQ))
	f.Add([]byte{0xff, 0xff, 0xff, 0xff, 0xff}) // runaway remaining length

	f.Fuzz(func(t *testing.T, data []byte) {
		r := bytes.NewReader(data)
		hdr, err := ReadFixedHeader(r)
		if err != nil {
			return
		}
		if hdr.Length < 0 || hdr.Length > MaxPacketSize {
			t.Fatalf("header passed validation with length %d", hdr.Length)
		}
		body := make([]byte, hdr.Length)
		if _, err := io.ReadFull(r, body); err != nil {
			return
		}
		switch hdr.Type {
		case CONNECT:
			cp, err := decodeConnect(body)
			if err != nil {
				return
			}
			// Round trip: the session fields of a CONNECT that decoded
			// must survive re-encode/re-decode unchanged.
			var cbuf bytes.Buffer
			if err := cp.encode(&cbuf); err != nil {
				t.Fatalf("re-encode of decoded connect failed: %v", err)
			}
			chdr, err := ReadFixedHeader(&cbuf)
			if err != nil || chdr.Type != CONNECT {
				t.Fatalf("re-read connect header: %v (%v)", chdr.Type, err)
			}
			cp2, err := decodeConnect(cbuf.Bytes())
			if err != nil {
				t.Fatalf("decode of re-encoded connect failed: %v", err)
			}
			if *cp2 != *cp {
				t.Fatalf("connect round trip mismatch: %+v != %+v", cp2, cp)
			}
		case CONNACK:
			_, _, _ = decodeConnack(body)
		case PUBLISH:
			p, err := decodePublish(hdr.Flags, body)
			if err != nil {
				return
			}
			if err := ValidateTopicName(p.Topic); err != nil {
				t.Fatalf("decodePublish accepted invalid topic %q: %v", p.Topic, err)
			}
			// Round trip: what decoded must re-encode and decode back
			// to the same message.
			pkt, err := appendPublish(nil, p)
			if err != nil {
				t.Fatalf("re-encode of decoded publish failed: %v", err)
			}
			r2 := bytes.NewReader(pkt)
			hdr2, err := ReadFixedHeader(r2)
			if err != nil || hdr2.Type != PUBLISH {
				t.Fatalf("re-read header: %v (%v)", hdr2.Type, err)
			}
			body2 := make([]byte, hdr2.Length)
			if _, err := io.ReadFull(r2, body2); err != nil {
				t.Fatal(err)
			}
			p2, err := decodePublish(hdr2.Flags, body2)
			if err != nil {
				t.Fatalf("re-decode failed: %v", err)
			}
			if p2.Topic != p.Topic || p2.QoS != p.QoS || p2.Retain != p.Retain ||
				p2.Dup != p.Dup || p2.PacketID != p.PacketID || !bytes.Equal(p2.Payload, p.Payload) {
				t.Fatalf("round trip mismatch: %+v vs %+v", p2, p)
			}
		case PUBACK, UNSUBACK:
			_, _ = decodePacketID(body)
		case SUBSCRIBE:
			if sp, err := decodeSubscribe(body); err == nil {
				for _, s := range sp.Subs {
					if err := ValidateTopicFilter(s.Filter); err != nil {
						t.Fatalf("decodeSubscribe accepted invalid filter %q", s.Filter)
					}
				}
			}
		case SUBACK:
			_, _, _ = decodeSuback(body)
		case UNSUBSCRIBE:
			_, _ = decodeUnsubscribe(body)
		}
	})
}
