package mqtt

import (
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// newTestBroker starts a broker on a random loopback port.
func newTestBroker(t *testing.T) *Broker {
	t.Helper()
	b, err := NewBroker("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = b.Close() })
	return b
}

func dialTest(t *testing.T, addr, id string, onMsg MessageHandler) *Client {
	t.Helper()
	c, err := Dial(addr, ClientOptions{ClientID: id, CleanSession: true, OnMessage: onMsg})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = c.Close() })
	return c
}

func waitFor(t *testing.T, cond func() bool, msg string) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatal("timeout waiting for " + msg)
}

func TestPublishSubscribeQoS0(t *testing.T) {
	b := newTestBroker(t)
	var got atomic.Value
	sub := dialTest(t, b.Addr(), "sub", func(m Message) { got.Store(m.Clone()) })
	if err := sub.Subscribe(Subscription{Filter: "davide/+/power", QoS: 0}); err != nil {
		t.Fatal(err)
	}
	pub := dialTest(t, b.Addr(), "pub", nil)
	if err := pub.Publish("davide/node01/power", []byte("1890.5"), 0, false); err != nil {
		t.Fatal(err)
	}
	waitFor(t, func() bool { return got.Load() != nil }, "message delivery")
	m := got.Load().(Message)
	if m.Topic != "davide/node01/power" || string(m.Payload) != "1890.5" {
		t.Errorf("got %+v", m)
	}
}

func TestPublishQoS1EndToEnd(t *testing.T) {
	b := newTestBroker(t)
	var count atomic.Int64
	sub := dialTest(t, b.Addr(), "sub", func(m Message) { count.Add(1) })
	if err := sub.Subscribe(Subscription{Filter: "t/#", QoS: 1}); err != nil {
		t.Fatal(err)
	}
	pub := dialTest(t, b.Addr(), "pub", nil)
	for i := 0; i < 20; i++ {
		if err := pub.Publish(fmt.Sprintf("t/%d", i), []byte("x"), 1, false); err != nil {
			t.Fatal(err)
		}
	}
	waitFor(t, func() bool { return count.Load() == 20 }, "all QoS1 messages")
	if b.Stats.PublishesIn.Load() != 20 {
		t.Errorf("PublishesIn = %d", b.Stats.PublishesIn.Load())
	}
}

func TestNoDeliveryWithoutMatchingSubscription(t *testing.T) {
	b := newTestBroker(t)
	var count atomic.Int64
	sub := dialTest(t, b.Addr(), "sub", func(m Message) { count.Add(1) })
	if err := sub.Subscribe(Subscription{Filter: "only/this", QoS: 0}); err != nil {
		t.Fatal(err)
	}
	pub := dialTest(t, b.Addr(), "pub", nil)
	if err := pub.Publish("something/else", []byte("x"), 1, false); err != nil {
		t.Fatal(err)
	}
	if err := pub.Publish("only/this", []byte("y"), 1, false); err != nil {
		t.Fatal(err)
	}
	waitFor(t, func() bool { return count.Load() == 1 }, "exactly one delivery")
	time.Sleep(20 * time.Millisecond)
	if count.Load() != 1 {
		t.Errorf("deliveries = %d, want 1", count.Load())
	}
}

func TestUnsubscribeStopsDelivery(t *testing.T) {
	b := newTestBroker(t)
	var count atomic.Int64
	sub := dialTest(t, b.Addr(), "sub", func(m Message) { count.Add(1) })
	if err := sub.Subscribe(Subscription{Filter: "x", QoS: 0}); err != nil {
		t.Fatal(err)
	}
	pub := dialTest(t, b.Addr(), "pub", nil)
	if err := pub.Publish("x", []byte("1"), 1, false); err != nil {
		t.Fatal(err)
	}
	waitFor(t, func() bool { return count.Load() == 1 }, "first delivery")
	if err := sub.Unsubscribe("x"); err != nil {
		t.Fatal(err)
	}
	if err := pub.Publish("x", []byte("2"), 1, false); err != nil {
		t.Fatal(err)
	}
	time.Sleep(30 * time.Millisecond)
	if count.Load() != 1 {
		t.Errorf("deliveries after unsubscribe = %d, want 1", count.Load())
	}
}

func TestRetainedMessageDelivery(t *testing.T) {
	b := newTestBroker(t)
	pub := dialTest(t, b.Addr(), "pub", nil)
	if err := pub.Publish("davide/node05/caps", []byte("1800"), 1, true); err != nil {
		t.Fatal(err)
	}
	waitFor(t, func() bool { return b.RetainedCount() == 1 }, "retained store")
	// A late subscriber still receives the retained value.
	var got atomic.Value
	sub := dialTest(t, b.Addr(), "late", func(m Message) { got.Store(m.Clone()) })
	if err := sub.Subscribe(Subscription{Filter: "davide/#", QoS: 1}); err != nil {
		t.Fatal(err)
	}
	waitFor(t, func() bool { return got.Load() != nil }, "retained delivery")
	m := got.Load().(Message)
	if !m.Retained || string(m.Payload) != "1800" {
		t.Errorf("retained = %+v", m)
	}
	// Empty retained payload clears the store.
	if err := pub.Publish("davide/node05/caps", nil, 1, true); err != nil {
		t.Fatal(err)
	}
	waitFor(t, func() bool { return b.RetainedCount() == 0 }, "retained clear")
}

func TestMultipleSubscribersFanOut(t *testing.T) {
	b := newTestBroker(t)
	const nSubs = 8
	var counts [nSubs]atomic.Int64
	for i := 0; i < nSubs; i++ {
		i := i
		sub := dialTest(t, b.Addr(), fmt.Sprintf("sub%d", i), func(m Message) { counts[i].Add(1) })
		if err := sub.Subscribe(Subscription{Filter: "fan/#", QoS: 0}); err != nil {
			t.Fatal(err)
		}
	}
	pub := dialTest(t, b.Addr(), "pub", nil)
	if err := pub.Publish("fan/out", []byte("x"), 1, false); err != nil {
		t.Fatal(err)
	}
	waitFor(t, func() bool {
		for i := range counts {
			if counts[i].Load() != 1 {
				return false
			}
		}
		return true
	}, "fan-out to all subscribers")
}

func TestOverlappingSubscriptionsSingleDelivery(t *testing.T) {
	// MQTT delivers one copy per client even when several filters match.
	b := newTestBroker(t)
	var count atomic.Int64
	sub := dialTest(t, b.Addr(), "sub", func(m Message) { count.Add(1) })
	if err := sub.Subscribe(
		Subscription{Filter: "a/#", QoS: 0},
		Subscription{Filter: "a/+", QoS: 1},
	); err != nil {
		t.Fatal(err)
	}
	pub := dialTest(t, b.Addr(), "pub", nil)
	if err := pub.Publish("a/b", []byte("x"), 1, false); err != nil {
		t.Fatal(err)
	}
	waitFor(t, func() bool { return count.Load() >= 1 }, "delivery")
	time.Sleep(30 * time.Millisecond)
	if count.Load() != 1 {
		t.Errorf("deliveries = %d, want exactly 1", count.Load())
	}
}

func TestClientIDTakeover(t *testing.T) {
	b := newTestBroker(t)
	c1 := dialTest(t, b.Addr(), "same-id", nil)
	_ = dialTest(t, b.Addr(), "same-id", nil)
	select {
	case <-c1.Done():
		// first connection was closed by the takeover
	case <-time.After(5 * time.Second):
		t.Fatal("old session not closed on takeover")
	}
	waitFor(t, func() bool { return b.Stats.Connections.Load() == 1 }, "single session")
}

func TestBrokerStats(t *testing.T) {
	b := newTestBroker(t)
	sub := dialTest(t, b.Addr(), "sub", func(Message) {})
	if err := sub.Subscribe(Subscription{Filter: "#", QoS: 0}); err != nil {
		t.Fatal(err)
	}
	pub := dialTest(t, b.Addr(), "pub", nil)
	for i := 0; i < 5; i++ {
		if err := pub.Publish("s", []byte("x"), 1, false); err != nil {
			t.Fatal(err)
		}
	}
	waitFor(t, func() bool { return b.Stats.PublishesOut.Load() == 5 }, "stats")
	if b.Stats.TotalConnects.Load() != 2 {
		t.Errorf("TotalConnects = %d", b.Stats.TotalConnects.Load())
	}
	if b.Stats.BytesIn.Load() == 0 || b.Stats.BytesOut.Load() == 0 {
		t.Error("byte counters should be non-zero")
	}
}

func TestBrokerCloseIdempotent(t *testing.T) {
	b, err := NewBroker("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	if err := b.Close(); err != nil {
		t.Fatal(err)
	}
	if err := b.Close(); err != nil {
		t.Errorf("second close: %v", err)
	}
}

func TestDialErrors(t *testing.T) {
	if _, err := Dial("127.0.0.1:1", ClientOptions{ClientID: "x", ConnectWait: 200 * time.Millisecond}); err == nil {
		t.Error("dial to closed port should error")
	}
	b := newTestBroker(t)
	if _, err := Dial(b.Addr(), ClientOptions{}); err == nil {
		t.Error("empty client ID should error")
	}
}

func TestPublishValidationOnClient(t *testing.T) {
	b := newTestBroker(t)
	c := dialTest(t, b.Addr(), "c", nil)
	if err := c.Publish("bad/+/topic", []byte("x"), 0, false); err == nil {
		t.Error("wildcard publish should error")
	}
	if err := c.Publish("t", []byte("x"), 2, false); err == nil {
		t.Error("QoS 2 should error")
	}
	if err := c.Subscribe(); err == nil {
		t.Error("empty subscribe should error")
	}
	if err := c.Unsubscribe(); err == nil {
		t.Error("empty unsubscribe should error")
	}
}

func TestClosedClientOperations(t *testing.T) {
	b := newTestBroker(t)
	c := dialTest(t, b.Addr(), "c", nil)
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}
	if err := c.Close(); err != nil {
		t.Errorf("double close: %v", err)
	}
	if err := c.Publish("t", nil, 0, false); err == nil {
		t.Error("publish after close should error")
	}
	if err := c.Subscribe(Subscription{Filter: "t"}); err == nil {
		t.Error("subscribe after close should error")
	}
}

func TestKeepAlivePing(t *testing.T) {
	b := newTestBroker(t)
	c, err := Dial(b.Addr(), ClientOptions{ClientID: "pinger", KeepAlive: 50 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = c.Close() }()
	// Stay connected for several keepalive periods; the broker would cut
	// us off at 1.5x keepalive without PINGREQs.
	time.Sleep(300 * time.Millisecond)
	select {
	case <-c.Done():
		t.Fatal("client disconnected despite pings")
	default:
	}
	if err := c.Publish("still/alive", []byte("1"), 1, false); err != nil {
		t.Errorf("publish after idle: %v", err)
	}
}

func TestConcurrentPublishers(t *testing.T) {
	b := newTestBroker(t)
	var received atomic.Int64
	sub := dialTest(t, b.Addr(), "sub", func(Message) { received.Add(1) })
	if err := sub.Subscribe(Subscription{Filter: "load/#", QoS: 1}); err != nil {
		t.Fatal(err)
	}
	const pubs, msgs = 8, 50
	var wg sync.WaitGroup
	for p := 0; p < pubs; p++ {
		p := p
		wg.Add(1)
		go func() {
			defer wg.Done()
			c, err := Dial(b.Addr(), ClientOptions{ClientID: fmt.Sprintf("pub%d", p), ConnectWait: 5 * time.Second})
			if err != nil {
				t.Error(err)
				return
			}
			defer func() { _ = c.Close() }()
			for m := 0; m < msgs; m++ {
				if err := c.Publish(fmt.Sprintf("load/%d/%d", p, m), []byte("v"), 1, false); err != nil {
					t.Error(err)
					return
				}
			}
		}()
	}
	wg.Wait()
	waitFor(t, func() bool { return received.Load() == pubs*msgs }, "all concurrent messages")
}
