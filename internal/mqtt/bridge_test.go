package mqtt

import (
	"context"
	"fmt"
	"sync"
	"testing"
	"time"
)

// bridgeFixture is a two-tier fabric in miniature: a rack broker, a
// spine broker, a bridge between them, and a spine-side subscriber
// recording everything that crosses the uplink.
type bridgeFixture struct {
	rack, spine *Broker
	bridge      *Bridge
	mu          sync.Mutex
	got         map[string]int // payload -> deliveries
	retained    int
}

func newBridgeFixture(t *testing.T, opts BridgeOptions) *bridgeFixture {
	t.Helper()
	f := &bridgeFixture{
		rack:  newTestBroker(t),
		spine: newTestBroker(t),
		got:   make(map[string]int),
	}
	sub := dialTest(t, f.spine.Addr(), "spine-sub", func(m Message) {
		f.mu.Lock()
		f.got[string(m.Payload)]++
		if m.Retained {
			f.retained++
		}
		f.mu.Unlock()
	})
	if err := sub.Subscribe(
		Subscription{Filter: "davide/+/power", QoS: 0},
		Subscription{Filter: "davide/+/energy", QoS: 1},
	); err != nil {
		t.Fatal(err)
	}
	if opts.Name == "" {
		opts.Name = "b0"
	}
	if opts.Filters == nil {
		opts.Filters = []Subscription{
			{Filter: "davide/+/power", QoS: 0},
			{Filter: "davide/+/energy", QoS: 1},
		}
	}
	br, err := NewBridge(f.rack.Addr(), f.spine.Addr(), opts)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = br.Close() })
	f.bridge = br
	return f
}

func (f *bridgeFixture) delivered(payload string) int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.got[payload]
}

func (f *bridgeFixture) distinct() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return len(f.got)
}

func TestBridgeForwardsMatchingTopics(t *testing.T) {
	f := newBridgeFixture(t, BridgeOptions{})
	pub := dialTest(t, f.rack.Addr(), "gw", nil)
	for i := 0; i < 10; i++ {
		if err := pub.Publish("davide/node01/power", []byte(fmt.Sprintf("p%d", i)), 0, false); err != nil {
			t.Fatal(err)
		}
	}
	if err := pub.Publish("davide/node01/energy", []byte("e0"), 1, true); err != nil {
		t.Fatal(err)
	}
	// Off-tree topics must not cross the uplink.
	if err := pub.Publish("other/noise", []byte("noise"), 0, false); err != nil {
		t.Fatal(err)
	}
	waitFor(t, func() bool { return f.distinct() == 11 }, "bridged delivery")
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := f.bridge.Drain(ctx); err != nil {
		t.Fatal(err)
	}
	if f.delivered("noise") != 0 {
		t.Error("off-tree topic crossed the bridge")
	}
	st := f.bridge.Stats()
	if st.Forwarded != 11 || st.Dropped != 0 {
		t.Errorf("stats = %+v, want Forwarded 11, Dropped 0", st)
	}
	if st.ForwardedBytes == 0 {
		t.Error("ForwardedBytes not accounted")
	}
}

// TestBridgeCarriesRetainedSnapshot: live routing clears the RETAIN flag
// ([MQTT-3.3.1-9]), so retained state crosses the uplink when the bridge
// (re)subscribes — the source broker replays its retained store flagged,
// and the bridge forwards it flagged, seeding the spine's retained store.
func TestBridgeCarriesRetainedSnapshot(t *testing.T) {
	f := newBridgeFixture(t, BridgeOptions{Name: "b4"})
	pub := dialTest(t, f.rack.Addr(), "gw", nil)
	if err := pub.Publish("davide/node01/energy", []byte("e-snap"), 1, true); err != nil {
		t.Fatal(err)
	}
	waitFor(t, func() bool { return f.delivered("e-snap") == 1 }, "live energy delivery")
	if f.spine.RetainedCount() != 0 {
		t.Fatal("live forward unexpectedly retained")
	}
	// Force a bridge resubscription: the retained snapshot crosses now.
	if !f.rack.Kick("b4-src") {
		t.Fatal("rack had no bridge session to kick")
	}
	waitFor(t, func() bool { return f.spine.RetainedCount() == 1 }, "retained snapshot on spine")
	f.mu.Lock()
	retained := f.retained
	f.mu.Unlock()
	if retained != 0 {
		// spine-sub was subscribed before the snapshot arrived, so its
		// copy is a live (unflagged) delivery too.
		t.Errorf("existing subscriber saw %d flagged deliveries, want 0", retained)
	}
}

// TestBridgeReconnectAfterSpineKick: the spine broker kicks the uplink
// session mid-stream (an operator action or a spine restart); with
// ForceQoS1 the bridge must redial and retry so no message is lost —
// duplicates are allowed (at-least-once), loss is not.
func TestBridgeReconnectAfterSpineKick(t *testing.T) {
	f := newBridgeFixture(t, BridgeOptions{Name: "b1", ForceQoS1: true})
	pub := dialTest(t, f.rack.Addr(), "gw", nil)
	const total = 120
	kicked := false
	for i := 0; i < total; i++ {
		if err := pub.Publish("davide/node01/power", []byte(fmt.Sprintf("p%03d", i)), 0, false); err != nil {
			t.Fatal(err)
		}
		if i == total/3 {
			// Let some traffic cross, then sever the uplink session.
			waitFor(t, func() bool { return f.distinct() > 0 }, "pre-kick delivery")
			kicked = f.spine.Kick("b1-up")
		}
		time.Sleep(200 * time.Microsecond)
	}
	if !kicked {
		t.Fatal("spine had no uplink session to kick")
	}
	waitFor(t, func() bool { return f.distinct() == total }, "all messages despite kick")
	for i := 0; i < total; i++ {
		if f.delivered(fmt.Sprintf("p%03d", i)) < 1 {
			t.Errorf("message %d lost across the uplink", i)
		}
	}
	if st := f.bridge.Stats(); st.UplinkRedials < 1 {
		t.Errorf("stats = %+v, want at least one uplink redial", st)
	}
}

// TestBridgeSourceRedial: if the rack broker kicks the bridge's
// subscriber session, the bridge must come back and resubscribe.
func TestBridgeSourceRedial(t *testing.T) {
	f := newBridgeFixture(t, BridgeOptions{Name: "b2"})
	pub := dialTest(t, f.rack.Addr(), "gw", nil)
	if err := pub.Publish("davide/node01/power", []byte("before"), 0, false); err != nil {
		t.Fatal(err)
	}
	waitFor(t, func() bool { return f.delivered("before") == 1 }, "pre-kick delivery")
	if !f.rack.Kick("b2-src") {
		t.Fatal("rack had no bridge session to kick")
	}
	waitFor(t, func() bool { return f.bridge.Stats().SourceRedials == 1 }, "source redial")
	if err := pub.Publish("davide/node01/power", []byte("after"), 0, false); err != nil {
		t.Fatal(err)
	}
	waitFor(t, func() bool { return f.delivered("after") == 1 }, "post-redial delivery")
}

// gateLink blocks uplink deliveries until released — a stand-in for a
// slow spine that lets the test fill the bridge queue deterministically.
type gateLink struct {
	release chan struct{}
	quit    chan struct{}
}

func (g *gateLink) Send(m Message, deliver DeliverFunc) error {
	select {
	case <-g.release:
	case <-g.quit:
		return nil // drop silently during teardown
	}
	return deliver(m)
}

func (g *gateLink) Flush(DeliverFunc) error { return nil }

// TestBridgeBackpressureCountsDrops: with a stalled uplink and a full
// queue, new messages are dropped and counted instead of buffered
// without bound — the broker's own QoS-0 overflow policy, surfaced.
func TestBridgeBackpressureCountsDrops(t *testing.T) {
	gate := &gateLink{release: make(chan struct{}), quit: make(chan struct{})}
	defer close(gate.quit)
	f := newBridgeFixture(t, BridgeOptions{Name: "b3", QueueDepth: 4, Link: gate})
	pub := dialTest(t, f.rack.Addr(), "gw", nil)
	// 1 message stalls in the forward goroutine, 4 fill the queue; the
	// rest must drop. Publish a healthy margin: QoS-0 delivery to the
	// bridge's source session is asynchronous.
	const total = 32
	for i := 0; i < total; i++ {
		if err := pub.Publish("davide/node01/power", []byte(fmt.Sprintf("p%d", i)), 0, false); err != nil {
			t.Fatal(err)
		}
	}
	waitFor(t, func() bool { return f.bridge.Stats().Dropped > 0 }, "backpressure drops")
	close(gate.release)
	waitFor(t, func() bool {
		st := f.bridge.Stats()
		return st.Forwarded+st.Dropped == total
	}, "every message accounted forwarded or dropped")
	if st := f.bridge.Stats(); st.HighWater < 4 {
		t.Errorf("stats = %+v, want queue high-water at depth", st)
	}
}
