package mqtt

import (
	"sync"
	"sync/atomic"
)

// pbuf is a pooled packet buffer. The wrapper pointer itself is what
// cycles through the sync.Pool, so Get/Put allocate nothing once warm.
type pbuf struct {
	b []byte
}

// bufPool hands out packet read/encode buffers and counts how often a
// request was served from an already-grown buffer (the steady-state
// path). reuses may be nil when nobody cares.
type bufPool struct {
	pool   sync.Pool
	reuses *atomic.Int64
}

// minBufSize keeps tiny control packets from pinning tiny buffers: every
// fresh allocation can hold a typical telemetry batch.
const minBufSize = 4096

// Get returns a buffer of length n. The contents are undefined.
func (p *bufPool) Get(n int) *pbuf {
	v, _ := p.pool.Get().(*pbuf)
	if v == nil {
		v = &pbuf{}
	}
	if cap(v.b) >= n {
		if p.reuses != nil {
			p.reuses.Add(1)
		}
	} else {
		c := n
		if c < minBufSize {
			c = minBufSize
		}
		v.b = make([]byte, c)
	}
	v.b = v.b[:n]
	return v
}

// Put recycles the buffer. The caller must not touch it afterwards.
func (p *bufPool) Put(v *pbuf) { p.pool.Put(v) }
