package energyserve

import "sync"

// cacheEntry is one serialized window answer, stamped with the node's
// ingest watermark at the time the answer was computed. The entry is a
// hit while the node's current watermark equals the stamp (nothing that
// could change any answer happened since), or while the whole window is
// provably sealed (see sealedValid).
type cacheEntry struct {
	body []byte
	wm   uint64
}

type cacheShard struct {
	mu sync.Mutex
	m  map[string]cacheEntry
}

// windowCache is a sharded bounded map from window key to serialized
// answer. Eviction is arbitrary-entry-per-insert once a shard is full:
// the hot-window working set is small and re-filling a dropped entry is
// one store query, so LRU bookkeeping on the hit path isn't worth its
// cost at the request rates the service targets.
type windowCache struct {
	shards []cacheShard
	cap    int // per shard
}

func newWindowCache(shards, totalCap int) *windowCache {
	n := 1
	for n < shards {
		n <<= 1
	}
	per := totalCap / n
	if per < 1 {
		per = 1
	}
	c := &windowCache{shards: make([]cacheShard, n), cap: per}
	for i := range c.shards {
		c.shards[i].m = make(map[string]cacheEntry)
	}
	return c
}

func (c *windowCache) shard(key string) *cacheShard {
	// FNV-1a, inlined to keep the hit path allocation-free.
	h := uint32(2166136261)
	for i := 0; i < len(key); i++ {
		h = (h ^ uint32(key[i])) * 16777619
	}
	return &c.shards[h&uint32(len(c.shards)-1)]
}

func (c *windowCache) get(key string) (cacheEntry, bool) {
	sh := c.shard(key)
	sh.mu.Lock()
	e, ok := sh.m[key]
	sh.mu.Unlock()
	return e, ok
}

func (c *windowCache) put(key string, e cacheEntry) {
	sh := c.shard(key)
	sh.mu.Lock()
	if _, exists := sh.m[key]; !exists && len(sh.m) >= c.cap {
		for k := range sh.m {
			delete(sh.m, k)
			break
		}
	}
	sh.m[key] = e
	sh.mu.Unlock()
}
