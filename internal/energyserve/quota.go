package energyserve

import (
	"sync"

	"davide/internal/obs"
)

// quotaTable enforces per-tenant token buckets: each tenant refills at
// rate tokens/s up to burst, every request costs one token. rate <= 0
// disables enforcement. The clock is injected so tests can drive refill
// deterministically and assert exact reject counts.
type quotaTable struct {
	rate, burst float64
	now         func() float64
	reg         *obs.Registry
	shards      [16]quotaShard
}

type quotaShard struct {
	mu      sync.Mutex
	buckets map[string]*bucket
}

type bucket struct {
	tokens  float64
	last    float64
	rejects *obs.Counter // nil without a registry
}

func newQuotaTable(rate, burst float64, now func() float64, reg *obs.Registry) *quotaTable {
	t := &quotaTable{rate: rate, burst: burst, now: now, reg: reg}
	for i := range t.shards {
		t.shards[i].buckets = make(map[string]*bucket)
	}
	return t
}

func (t *quotaTable) shard(tenant string) *quotaShard {
	h := uint32(2166136261)
	for i := 0; i < len(tenant); i++ {
		h = (h ^ uint32(tenant[i])) * 16777619
	}
	return &t.shards[h&uint32(len(t.shards)-1)]
}

// allow spends one token for the tenant. On refusal it returns the time
// in seconds until a token exists — the Retry-After the handler sends.
func (t *quotaTable) allow(tenant string) (ok bool, wait float64) {
	if t.rate <= 0 {
		return true, 0
	}
	sh := t.shard(tenant)
	sh.mu.Lock()
	b := sh.buckets[tenant]
	if b == nil {
		b = &bucket{tokens: t.burst, last: t.now()}
		if t.reg != nil {
			b.rejects = t.reg.CounterOf(
				obs.Key("davide_api_quota_rejects_total", "tenant", tenant), obs.Volatile())
		}
		sh.buckets[tenant] = b
	}
	now := t.now()
	b.tokens += (now - b.last) * t.rate
	if b.tokens > t.burst {
		b.tokens = t.burst
	}
	b.last = now
	if b.tokens >= 1 {
		b.tokens--
		sh.mu.Unlock()
		return true, 0
	}
	wait = (1 - b.tokens) / t.rate
	rejects := b.rejects
	sh.mu.Unlock()
	if rejects != nil {
		rejects.Inc()
	}
	return false, wait
}
