// Package energyserve is the multi-tenant energy query service of the
// control plane: an HTTP/JSON front end over the accounting ledger, the
// telemetry store and the PowerAPI hierarchy. It is the piece that turns
// the paper's per-user/per-job energy accounting (§III-A1) and the §IV
// phase views into something site users and tools can actually query
// while a run is in flight — with per-tenant token-bucket quotas so one
// user's dashboard cannot starve the plane, and a sharded result cache
// over the hot window queries kept coherent with ingest by the store's
// watermark (see DESIGN.md §11 for the coherence contract).
package energyserve

import (
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"net"
	"net/http"
	"strconv"
	"strings"
	"sync/atomic"
	"time"

	"davide/internal/accounting"
	"davide/internal/energyapi"
	"davide/internal/obs"
	"davide/internal/powerapi"
	"davide/internal/tsdb"
)

// Backend is the queryable surface the server fronts. All fields must be
// safe for concurrent use (the store and ledger are internally locked;
// Assignments must snapshot under its own lock — core.LivePlant hands
// over exactly such a set mid-run).
type Backend struct {
	// Store answers window/energy/phase queries.
	Store *tsdb.DB
	// Ledger answers per-user and per-job accounting queries.
	Ledger *accounting.Ledger
	// Assignments maps job ID to the concrete nodes it ran on (nil
	// disables the job-phase endpoint).
	Assignments func() map[int][]int
	// Power, when non-nil, serves pwrcmd-style hierarchy reports.
	Power *powerapi.Hierarchy
	// Nodes and RackSize describe the machine geometry for the per-rack
	// power endpoint.
	Nodes    int
	RackSize int
}

// Options tunes a Server. The zero value serves unthrottled with a
// default-sized cache and no metrics.
type Options struct {
	// QuotaRate is each tenant's sustained request budget in requests
	// per second; 0 disables quota enforcement.
	QuotaRate float64
	// QuotaBurst is the token-bucket depth (default: QuotaRate).
	QuotaBurst float64
	// CacheShards is the window cache's lock-stripe count, rounded up
	// to a power of two (default 16).
	CacheShards int
	// CacheCap bounds the total cached window entries (default 4096).
	CacheCap int
	// Obs, when non-nil, receives the service metrics (request counts,
	// cache hit/miss, per-tenant quota rejects, latency histograms) —
	// all registered volatile, so deterministic snapshots ignore them.
	Obs *obs.Registry
	// Now supplies the quota clock in seconds (default: wall clock).
	// Injectable so tests can drive refill deterministically.
	Now func() float64
}

func (o Options) withDefaults() Options {
	if o.QuotaBurst <= 0 {
		o.QuotaBurst = o.QuotaRate
	}
	if o.CacheShards <= 0 {
		o.CacheShards = 16
	}
	if o.CacheCap <= 0 {
		o.CacheCap = 4096
	}
	if o.Now == nil {
		o.Now = func() float64 { return float64(time.Now().UnixNano()) / 1e9 }
	}
	return o
}

// Server is the query service. Build one with NewServer (or Serve to
// listen immediately), then Bind a Backend; requests before Bind get 503.
type Server struct {
	opts    Options
	backend atomic.Pointer[Backend]
	cache   *windowCache
	quotas  *quotaTable
	mux     *http.ServeMux

	hits, misses atomic.Int64

	ln  net.Listener
	srv *http.Server
}

// NewServer builds the service without listening — Handler plugs it into
// any http server, or drive it directly in tests and benchmarks.
func NewServer(opts Options) *Server {
	opts = opts.withDefaults()
	s := &Server{
		opts:   opts,
		cache:  newWindowCache(opts.CacheShards, opts.CacheCap),
		quotas: newQuotaTable(opts.QuotaRate, opts.QuotaBurst, opts.Now, opts.Obs),
		mux:    http.NewServeMux(),
	}
	if opts.Obs != nil {
		opts.Obs.CounterFunc("davide_api_cache_hits_total",
			func() float64 { return float64(s.hits.Load()) }, obs.Volatile())
		opts.Obs.CounterFunc("davide_api_cache_misses_total",
			func() float64 { return float64(s.misses.Load()) }, obs.Volatile())
		opts.Obs.GaugeFunc("davide_api_cache_hit_ratio", func() float64 {
			h, m := float64(s.hits.Load()), float64(s.misses.Load())
			if h+m == 0 {
				return 0
			}
			return h / (h + m)
		}, obs.Volatile())
	}
	s.route("GET /v1/users", "users", s.handleUsers)
	s.route("GET /v1/users/{id}", "user", s.handleUser)
	s.route("GET /v1/jobs/{id}", "job", s.handleJob)
	s.route("GET /v1/jobs/{id}/phases", "job_phases", s.handleJobPhases)
	s.route("GET /v1/nodes/{n}/phases", "node_phases", s.handleNodePhases)
	s.route("GET /v1/nodes/{n}/window", "window", s.handleWindow)
	s.route("GET /v1/racks/{r}/power", "rack_power", s.handleRackPower)
	s.route("GET /v1/power/report", "power_report", s.handleReport)
	return s
}

// Serve builds the service and starts listening on addr (":0" picks a
// free port; Addr reports the bound one).
func Serve(addr string, opts Options) (*Server, error) {
	s := NewServer(opts)
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	s.ln = ln
	s.srv = &http.Server{Handler: s.mux, ReadHeaderTimeout: 5 * time.Second}
	go func() { _ = s.srv.Serve(ln) }()
	return s, nil
}

// Bind points the server at a backend (atomically; safe while serving).
func (s *Server) Bind(b Backend) {
	s.backend.Store(&b)
}

// Handler returns the service mux for embedding.
func (s *Server) Handler() http.Handler { return s.mux }

// Addr returns the bound listen address ("" when built with NewServer).
func (s *Server) Addr() string {
	if s.ln == nil {
		return ""
	}
	return s.ln.Addr().String()
}

// Close stops the listener (a no-op for an unlistened server).
func (s *Server) Close() error {
	if s.srv == nil {
		return nil
	}
	return s.srv.Close()
}

// tenantOf resolves the requester's tenant: the X-Tenant header, the
// tenant query parameter, or "anon".
func tenantOf(r *http.Request) string {
	if t := r.Header.Get("X-Tenant"); t != "" {
		return t
	}
	if t := r.URL.Query().Get("tenant"); t != "" {
		return t
	}
	return "anon"
}

// route registers one endpoint behind the shared quota/metrics wrapper.
func (s *Server) route(pattern, name string, fn func(http.ResponseWriter, *http.Request, *Backend)) {
	var requests *obs.Counter
	var lat *obs.Histogram
	if s.opts.Obs != nil {
		requests = s.opts.Obs.CounterOf(
			obs.Key("davide_api_requests_total", "endpoint", name), obs.Volatile())
		// Observed in microseconds, scaled to seconds on export.
		lat = s.opts.Obs.HistogramOf(
			obs.Key("davide_api_latency_seconds", "endpoint", name),
			obs.Volatile(), obs.Scale(1e-6))
	}
	s.mux.HandleFunc(pattern, func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		if requests != nil {
			requests.Inc()
		}
		if ok, wait := s.quotas.allow(tenantOf(r)); !ok {
			// Retry-After is delta-seconds, rounded up so a compliant
			// client never retries before a token exists.
			w.Header().Set("Retry-After", strconv.Itoa(int(math.Ceil(wait))))
			http.Error(w, "energyserve: tenant quota exceeded", http.StatusTooManyRequests)
			return
		}
		b := s.backend.Load()
		if b == nil {
			http.Error(w, "energyserve: no backend bound", http.StatusServiceUnavailable)
			return
		}
		fn(w, r, b)
		if lat != nil {
			lat.Observe(time.Since(start).Microseconds())
		}
	})
}

func writeJSON(w http.ResponseWriter, v any) {
	body, err := json.Marshal(v)
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	_, _ = w.Write(body)
}

// UserReport is one user's summary line plus the per-job detail.
type UserReport struct {
	Summary accounting.UserSummary `json:"summary"`
	Records []accounting.Record    `json:"records"`
}

// WindowReport is one node's power over a window at one resolution — the
// cached hot query.
type WindowReport struct {
	Node    int          `json:"node"`
	T0      float64      `json:"t0"`
	T1      float64      `json:"t1"`
	Res     float64      `json:"res"`
	EnergyJ float64      `json:"energy_j"`
	MeanW   float64      `json:"mean_w"`
	Points  []tsdb.Point `json:"points"`
}

// RackPower is one rack's instantaneous IT power from latest telemetry.
type RackPower struct {
	Rack      int     `json:"rack"`
	FirstNode int     `json:"first_node"`
	Nodes     int     `json:"nodes"` // nodes with telemetry included in the sum
	PowerW    float64 `json:"power_w"`
	AsOf      float64 `json:"as_of"` // oldest contributing sample time
}

func (s *Server) handleUsers(w http.ResponseWriter, _ *http.Request, b *Backend) {
	writeJSON(w, b.Ledger.PerUser())
}

func (s *Server) handleUser(w http.ResponseWriter, r *http.Request, b *Backend) {
	id, err := strconv.Atoi(r.PathValue("id"))
	if err != nil {
		http.Error(w, "energyserve: bad user id", http.StatusBadRequest)
		return
	}
	recs := b.Ledger.UserRecords(id)
	if len(recs) == 0 {
		http.Error(w, fmt.Sprintf("energyserve: no records for user %d", id), http.StatusNotFound)
		return
	}
	sum := accounting.UserSummary{User: id}
	for _, rec := range recs {
		sum.Jobs++
		sum.EnergyJ += rec.EnergyJ
		sum.NodeSeconds += rec.NodeSeconds()
	}
	if sum.NodeSeconds > 0 {
		sum.EnergyPerNodeSecond = sum.EnergyJ / sum.NodeSeconds
	}
	writeJSON(w, UserReport{Summary: sum, Records: recs})
}

func (s *Server) handleJob(w http.ResponseWriter, r *http.Request, b *Backend) {
	id, err := strconv.Atoi(r.PathValue("id"))
	if err != nil {
		http.Error(w, "energyserve: bad job id", http.StatusBadRequest)
		return
	}
	rec, err := b.Ledger.Job(id)
	if err != nil {
		http.Error(w, err.Error(), http.StatusNotFound)
		return
	}
	writeJSON(w, rec)
}

// parseFloats parses a comma-separated float list ("" -> nil).
func parseFloats(s string) ([]float64, error) {
	if s == "" {
		return nil, nil
	}
	parts := strings.Split(s, ",")
	out := make([]float64, len(parts))
	for i, p := range parts {
		v, err := strconv.ParseFloat(strings.TrimSpace(p), 64)
		if err != nil {
			return nil, fmt.Errorf("energyserve: bad boundary %q", p)
		}
		out[i] = v
	}
	return out, nil
}

func (s *Server) handleJobPhases(w http.ResponseWriter, r *http.Request, b *Backend) {
	id, err := strconv.Atoi(r.PathValue("id"))
	if err != nil {
		http.Error(w, "energyserve: bad job id", http.StatusBadRequest)
		return
	}
	rec, err := b.Ledger.Job(id)
	if err != nil {
		http.Error(w, err.Error(), http.StatusNotFound)
		return
	}
	if b.Assignments == nil {
		http.Error(w, "energyserve: no assignment view bound", http.StatusNotFound)
		return
	}
	nodes := b.Assignments()[id]
	if len(nodes) == 0 {
		http.Error(w, fmt.Sprintf("energyserve: job %d has no node assignment", id), http.StatusNotFound)
		return
	}
	q := r.URL.Query()
	bounds, err := parseFloats(q.Get("bounds"))
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	var names []string
	if n := q.Get("names"); n != "" {
		names = strings.Split(n, ",")
	}
	if bounds == nil {
		bounds = []float64{rec.StartAt, rec.EndAt}
	}
	if names == nil {
		names = make([]string, len(bounds)-1)
		for i := range names {
			names[i] = rec.App
		}
	}
	if len(names) != len(bounds)-1 {
		http.Error(w, fmt.Sprintf("energyserve: %d names for %d phases", len(names), len(bounds)-1), http.StatusBadRequest)
		return
	}
	out := make([]energyapi.Phase, 0, len(names))
	for i, name := range names {
		ph, err := energyapi.JobPhase(b.Store, name, nodes, bounds[i], bounds[i+1])
		if err != nil {
			http.Error(w, err.Error(), storeStatus(err))
			return
		}
		out = append(out, ph)
	}
	writeJSON(w, out)
}

func (s *Server) handleNodePhases(w http.ResponseWriter, r *http.Request, b *Backend) {
	node, err := strconv.Atoi(r.PathValue("n"))
	if err != nil {
		http.Error(w, "energyserve: bad node", http.StatusBadRequest)
		return
	}
	q := r.URL.Query()
	bounds, err := parseFloats(q.Get("bounds"))
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	var names []string
	if n := q.Get("names"); n != "" {
		names = strings.Split(n, ",")
	}
	phases, err := energyapi.PhasesFromStore(b.Store, node, names, bounds)
	if err != nil {
		http.Error(w, err.Error(), storeStatus(err))
		return
	}
	// The body is exactly json.Marshal of the direct PhasesFromStore
	// result — the contract the report-equivalence property test pins.
	writeJSON(w, phases)
}

// storeStatus maps a store-backed query error to an HTTP status.
func storeStatus(err error) int {
	if errors.Is(err, tsdb.ErrUnknownNode) {
		return http.StatusNotFound
	}
	return http.StatusBadRequest
}

// sealedValid reports whether a cached window answer is immutable
// regardless of watermark movement: with raw retention disabled, every
// bucket (or raw sample) the query touches lies wholly behind the
// store's sealed horizon, where ingest can no longer place samples. The
// rollup bucket containing the horizon is still mutable (an in-head
// insert past the horizon can land in it), so for res > 0 the window's
// last bucket boundary must stay at or before the last complete bucket
// before the horizon.
func sealedValid(b *Backend, node int, t1, res float64) bool {
	if b.Store.RawRetention() != 0 {
		return false
	}
	h, ok := b.Store.SealedHorizon(node)
	if !ok {
		return false
	}
	if res > 0 {
		return math.Ceil(t1/res)*res <= math.Floor(h/res)*res
	}
	return t1 <= h
}

func (s *Server) handleWindow(w http.ResponseWriter, r *http.Request, b *Backend) {
	node, err := strconv.Atoi(r.PathValue("n"))
	if err != nil {
		http.Error(w, "energyserve: bad node", http.StatusBadRequest)
		return
	}
	q := r.URL.Query()
	t0, err0 := strconv.ParseFloat(q.Get("t0"), 64)
	t1, err1 := strconv.ParseFloat(q.Get("t1"), 64)
	if err0 != nil || err1 != nil || t1 < t0 {
		http.Error(w, "energyserve: need t0 <= t1", http.StatusBadRequest)
		return
	}
	res := 0.0
	if rs := q.Get("res"); rs != "" {
		res, err = strconv.ParseFloat(rs, 64)
		if err != nil || res < 0 {
			http.Error(w, "energyserve: bad res", http.StatusBadRequest)
			return
		}
	}
	bypass := q.Get("nocache") == "1"
	key := windowKey(node, t0, t1, res)
	if !bypass {
		if e, ok := s.cache.get(key); ok {
			cur := b.Store.Watermark(node)
			if cur == e.wm || sealedValid(b, node, t1, res) {
				if cur != e.wm {
					// Refresh the stamp so the cheap equality path wins
					// next time.
					s.cache.put(key, cacheEntry{body: e.body, wm: cur})
				}
				s.hits.Add(1)
				w.Header().Set("X-Cache", "hit")
				w.Header().Set("Content-Type", "application/json")
				_, _ = w.Write(e.body)
				return
			}
		}
	}
	// Read the watermark BEFORE the data: if ingest lands in between,
	// the entry is stamped older than its contents and the next lookup
	// conservatively refetches — a cached answer is never staler than
	// its stamp claims.
	wm := b.Store.Watermark(node)
	energy, err := b.Store.EnergyAt(node, t0, t1, res)
	if err != nil {
		http.Error(w, err.Error(), storeStatus(err))
		return
	}
	points, err := b.Store.Fetch(node, t0, t1, res)
	if err != nil {
		http.Error(w, err.Error(), storeStatus(err))
		return
	}
	rep := WindowReport{Node: node, T0: t0, T1: t1, Res: res, EnergyJ: energy, Points: points}
	if t1 > t0 {
		rep.MeanW = energy / (t1 - t0)
	}
	body, err := json.Marshal(rep)
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	if bypass {
		w.Header().Set("X-Cache", "bypass")
	} else {
		s.misses.Add(1)
		s.cache.put(key, cacheEntry{body: body, wm: wm})
		w.Header().Set("X-Cache", "miss")
	}
	w.Header().Set("Content-Type", "application/json")
	_, _ = w.Write(body)
}

func windowKey(node int, t0, t1, res float64) string {
	return strconv.Itoa(node) + "/" +
		strconv.FormatFloat(t0, 'g', -1, 64) + "/" +
		strconv.FormatFloat(t1, 'g', -1, 64) + "/" +
		strconv.FormatFloat(res, 'g', -1, 64)
}

func (s *Server) handleRackPower(w http.ResponseWriter, r *http.Request, b *Backend) {
	rk, err := strconv.Atoi(r.PathValue("r"))
	if err != nil || rk < 0 {
		http.Error(w, "energyserve: bad rack", http.StatusBadRequest)
		return
	}
	if b.RackSize <= 0 || b.Nodes <= 0 || rk*b.RackSize >= b.Nodes {
		http.Error(w, fmt.Sprintf("energyserve: no rack %d", rk), http.StatusNotFound)
		return
	}
	first := rk * b.RackSize
	last := first + b.RackSize
	if last > b.Nodes {
		last = b.Nodes
	}
	// Served from the store's newest samples, not the powerapi models:
	// model reads would race with the controller actuating mid-run,
	// while the store is the measured truth and internally locked.
	out := RackPower{Rack: rk, FirstNode: first}
	for n := first; n < last; n++ {
		t, pw, err := b.Store.Latest(n)
		if err != nil {
			continue // no telemetry yet for this node
		}
		if out.Nodes == 0 || t < out.AsOf {
			out.AsOf = t
		}
		out.Nodes++
		out.PowerW += pw
	}
	if out.Nodes == 0 {
		http.Error(w, fmt.Sprintf("energyserve: no telemetry yet for rack %d", rk), http.StatusNotFound)
		return
	}
	writeJSON(w, out)
}

func (s *Server) handleReport(w http.ResponseWriter, r *http.Request, b *Backend) {
	if b.Power == nil {
		http.Error(w, "energyserve: no power hierarchy bound", http.StatusNotFound)
		return
	}
	root := r.URL.Query().Get("root")
	if root == "" {
		root = "davide"
	}
	rep, err := b.Power.Report(root)
	if err != nil {
		status := http.StatusInternalServerError
		if errors.Is(err, powerapi.ErrNoSuchObject) {
			status = http.StatusNotFound
		}
		http.Error(w, err.Error(), status)
		return
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	_, _ = w.Write([]byte(rep))
}
