package energyserve

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"
	"time"

	"davide/internal/accounting"
	"davide/internal/energyapi"
)

// QuotaError reports a 429 from the service, carrying the server's
// Retry-After hint in seconds.
type QuotaError struct {
	RetryAfter float64
}

func (e *QuotaError) Error() string {
	return fmt.Sprintf("energyserve: quota exceeded, retry after %gs", e.RetryAfter)
}

// Client is the typed HTTP client of the service — what egmon uses in
// remote mode instead of its in-process queries.
type Client struct {
	base   string
	tenant string
	hc     *http.Client
}

// NewClient targets a service at base (host:port or full URL),
// identifying as tenant ("" falls back to the server's anon bucket).
func NewClient(base, tenant string) *Client {
	if !strings.Contains(base, "://") {
		base = "http://" + base
	}
	return &Client{
		base:   strings.TrimRight(base, "/"),
		tenant: tenant,
		hc:     &http.Client{Timeout: 10 * time.Second},
	}
}

// get fetches path and decodes JSON into out (or captures raw text when
// out is *string).
func (c *Client) get(path string, out any) error {
	req, err := http.NewRequest(http.MethodGet, c.base+path, nil)
	if err != nil {
		return err
	}
	if c.tenant != "" {
		req.Header.Set("X-Tenant", c.tenant)
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(io.LimitReader(resp.Body, 64<<20))
	if err != nil {
		return err
	}
	if resp.StatusCode == http.StatusTooManyRequests {
		ra, _ := strconv.ParseFloat(resp.Header.Get("Retry-After"), 64)
		return &QuotaError{RetryAfter: ra}
	}
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("energyserve: %s: %s", resp.Status, strings.TrimSpace(string(body)))
	}
	if sp, ok := out.(*string); ok {
		*sp = string(body)
		return nil
	}
	return json.Unmarshal(body, out)
}

// Users returns the per-user energy summaries, sorted by energy.
func (c *Client) Users() ([]accounting.UserSummary, error) {
	var out []accounting.UserSummary
	err := c.get("/v1/users", &out)
	return out, err
}

// User returns one user's summary and per-job records.
func (c *Client) User(id int) (UserReport, error) {
	var out UserReport
	err := c.get("/v1/users/"+strconv.Itoa(id), &out)
	return out, err
}

// Job returns one job's accounting record.
func (c *Client) Job(id int) (accounting.Record, error) {
	var out accounting.Record
	err := c.get("/v1/jobs/"+strconv.Itoa(id), &out)
	return out, err
}

// JobPhases returns the measured phase view of one scheduled job.
func (c *Client) JobPhases(id int) ([]energyapi.Phase, error) {
	var out []energyapi.Phase
	err := c.get("/v1/jobs/"+strconv.Itoa(id)+"/phases", &out)
	return out, err
}

// NodePhases rebuilds a §IV phase report for one node from stored
// telemetry: names[i] labels [bounds[i], bounds[i+1]).
func (c *Client) NodePhases(node int, names []string, bounds []float64) ([]energyapi.Phase, error) {
	bs := make([]string, len(bounds))
	for i, b := range bounds {
		bs[i] = strconv.FormatFloat(b, 'g', -1, 64)
	}
	path := fmt.Sprintf("/v1/nodes/%d/phases?names=%s&bounds=%s",
		node, strings.Join(names, ","), strings.Join(bs, ","))
	var out []energyapi.Phase
	err := c.get(path, &out)
	return out, err
}

// Window returns one node's power over [t0, t1] at resolution res
// (0 = raw samples).
func (c *Client) Window(node int, t0, t1, res float64) (WindowReport, error) {
	path := fmt.Sprintf("/v1/nodes/%d/window?t0=%s&t1=%s&res=%s",
		node,
		strconv.FormatFloat(t0, 'g', -1, 64),
		strconv.FormatFloat(t1, 'g', -1, 64),
		strconv.FormatFloat(res, 'g', -1, 64))
	var out WindowReport
	err := c.get(path, &out)
	return out, err
}

// RackPower returns one rack's instantaneous power from latest
// telemetry.
func (c *Client) RackPower(rack int) (RackPower, error) {
	var out RackPower
	err := c.get("/v1/racks/"+strconv.Itoa(rack)+"/power", &out)
	return out, err
}

// Report returns the pwrcmd-style hierarchy report rooted at root
// ("" = the platform).
func (c *Client) Report(root string) (string, error) {
	path := "/v1/power/report"
	if root != "" {
		path += "?root=" + root
	}
	var out string
	err := c.get(path, &out)
	return out, err
}
