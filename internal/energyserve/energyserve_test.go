package energyserve

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"

	"davide/internal/accounting"
	"davide/internal/energyapi"
	"davide/internal/node"
	"davide/internal/obs"
	"davide/internal/powerapi"
	"davide/internal/tsdb"
)

// testBackend builds a small deterministic queryable surface: 4 nodes of
// telemetry at 0.5 s spacing, 3 jobs across 2 users, racks of 2.
func testBackend(t *testing.T) (Backend, *tsdb.DB) {
	t.Helper()
	db := tsdb.New(tsdb.Options{ChunkSize: 32, Resolutions: []float64{1, 10}})
	for n := 0; n < 4; n++ {
		for i := 0; i <= 1000; i++ {
			db.Append(n, float64(i)*0.5, 100+float64(n)+50*math.Sin(float64(i)/7))
		}
	}
	led := accounting.NewLedger()
	for _, r := range []accounting.Record{
		{JobID: 1, User: 7, App: "cfd", Nodes: 2, StartAt: 10, EndAt: 110, EnergyJ: 4e4},
		{JobID: 2, User: 7, App: "md", Nodes: 1, StartAt: 120, EndAt: 220, EnergyJ: 1.5e4},
		{JobID: 3, User: 9, App: "qcd", Nodes: 1, StartAt: 50, EndAt: 450, EnergyJ: 6e4},
	} {
		if err := led.Add(r); err != nil {
			t.Fatal(err)
		}
	}
	asn := map[int][]int{1: {0, 1}, 2: {2}, 3: {3}}
	return Backend{
		Store:       db,
		Ledger:      led,
		Assignments: func() map[int][]int { return asn },
		Nodes:       4,
		RackSize:    2,
	}, db
}

func doReq(s *Server, tenant, path string) *httptest.ResponseRecorder {
	req := httptest.NewRequest(http.MethodGet, path, nil)
	if tenant != "" {
		req.Header.Set("X-Tenant", tenant)
	}
	rr := httptest.NewRecorder()
	s.Handler().ServeHTTP(rr, req)
	return rr
}

func TestUnboundBackend(t *testing.T) {
	s := NewServer(Options{})
	if rr := doReq(s, "", "/v1/users"); rr.Code != http.StatusServiceUnavailable {
		t.Fatalf("code = %d, want 503 before Bind", rr.Code)
	}
}

func TestUsersAndJobs(t *testing.T) {
	b, _ := testBackend(t)
	s := NewServer(Options{})
	s.Bind(b)

	rr := doReq(s, "", "/v1/users")
	if rr.Code != http.StatusOK {
		t.Fatalf("users: %d %s", rr.Code, rr.Body)
	}
	var users []accounting.UserSummary
	if err := json.Unmarshal(rr.Body.Bytes(), &users); err != nil {
		t.Fatal(err)
	}
	if len(users) != 2 || users[0].User != 9 || users[0].EnergyJ != 6e4 {
		t.Errorf("users = %+v", users)
	}

	rr = doReq(s, "", "/v1/users/7")
	var ur UserReport
	if err := json.Unmarshal(rr.Body.Bytes(), &ur); err != nil {
		t.Fatal(err)
	}
	if ur.Summary.Jobs != 2 || ur.Summary.EnergyJ != 5.5e4 || len(ur.Records) != 2 {
		t.Errorf("user 7 = %+v", ur)
	}
	if rr := doReq(s, "", "/v1/users/42"); rr.Code != http.StatusNotFound {
		t.Errorf("unknown user: %d", rr.Code)
	}

	rr = doReq(s, "", "/v1/jobs/2")
	var rec accounting.Record
	if err := json.Unmarshal(rr.Body.Bytes(), &rec); err != nil {
		t.Fatal(err)
	}
	if rec.App != "md" || rec.User != 7 {
		t.Errorf("job 2 = %+v", rec)
	}
	if rr := doReq(s, "", "/v1/jobs/99"); rr.Code != http.StatusNotFound {
		t.Errorf("unknown job: %d", rr.Code)
	}
}

func TestJobPhasesMatchesDirect(t *testing.T) {
	b, db := testBackend(t)
	s := NewServer(Options{})
	s.Bind(b)

	rr := doReq(s, "", "/v1/jobs/1/phases")
	if rr.Code != http.StatusOK {
		t.Fatalf("job phases: %d %s", rr.Code, rr.Body)
	}
	var got []energyapi.Phase
	if err := json.Unmarshal(rr.Body.Bytes(), &got); err != nil {
		t.Fatal(err)
	}
	want, err := energyapi.JobPhase(db, "cfd", []int{0, 1}, 10, 110)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || got[0] != want {
		t.Errorf("served %+v, direct %+v", got, want)
	}

	// Split bounds produce one phase per segment.
	rr = doReq(s, "", "/v1/jobs/1/phases?names=a,b&bounds=10,60,110")
	if err := json.Unmarshal(rr.Body.Bytes(), &got); err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 || got[0].Name != "a" || got[1].T1 != 110 {
		t.Errorf("split phases = %+v", got)
	}
	if math.Abs(got[0].EnergyJ+got[1].EnergyJ-want.EnergyJ) > 1e-6 {
		t.Errorf("split energies %v+%v != whole %v", got[0].EnergyJ, got[1].EnergyJ, want.EnergyJ)
	}
	if rr := doReq(s, "", "/v1/jobs/1/phases?names=a&bounds=10,60,110"); rr.Code != http.StatusBadRequest {
		t.Errorf("name/bounds mismatch: %d", rr.Code)
	}
}

// TestNodePhasesPropertyEqualDirect pins the report-equivalence
// contract: the served body is byte-for-byte json.Marshal of the direct
// energyapi.PhasesFromStore result, across randomized windows.
func TestNodePhasesPropertyEqualDirect(t *testing.T) {
	b, db := testBackend(t)
	s := NewServer(Options{})
	s.Bind(b)
	rng := rand.New(rand.NewSource(23))
	for trial := 0; trial < 50; trial++ {
		n := rng.Intn(4)
		k := 1 + rng.Intn(4)
		bounds := make([]float64, 0, k+1)
		names := make([]string, 0, k)
		at := 400 * rng.Float64()
		bounds = append(bounds, at)
		for i := 0; i < k; i++ {
			at += 1 + 80*rng.Float64()
			bounds = append(bounds, at)
			names = append(names, fmt.Sprintf("ph%d", i))
		}
		direct, err := energyapi.PhasesFromStore(db, n, names, bounds)
		if err != nil {
			t.Fatal(err)
		}
		want, err := json.Marshal(direct)
		if err != nil {
			t.Fatal(err)
		}
		bs := make([]string, len(bounds))
		for i, v := range bounds {
			bs[i] = fmt.Sprintf("%g", v)
		}
		rr := doReq(s, "", fmt.Sprintf("/v1/nodes/%d/phases?names=%s&bounds=%s",
			n, strings.Join(names, ","), strings.Join(bs, ",")))
		if rr.Code != http.StatusOK {
			t.Fatalf("trial %d: %d %s", trial, rr.Code, rr.Body)
		}
		if !bytes.Equal(rr.Body.Bytes(), want) {
			t.Fatalf("trial %d: served body differs from direct marshal\nserved: %s\ndirect: %s",
				trial, rr.Body.Bytes(), want)
		}
	}
	if rr := doReq(s, "", "/v1/nodes/77/phases?names=a&bounds=0,1"); rr.Code != http.StatusNotFound {
		t.Errorf("unknown node: %d", rr.Code)
	}
}

func TestWindowCacheCoherence(t *testing.T) {
	b, db := testBackend(t)
	s := NewServer(Options{})
	s.Bind(b)

	// Open window (reaches past the sealed horizon into the head).
	open := "/v1/nodes/0/window?t0=400&t1=600"
	r1 := doReq(s, "", open)
	if r1.Code != http.StatusOK || r1.Header().Get("X-Cache") != "miss" {
		t.Fatalf("first read: %d %q", r1.Code, r1.Header().Get("X-Cache"))
	}
	r2 := doReq(s, "", open)
	if r2.Header().Get("X-Cache") != "hit" || !bytes.Equal(r1.Body.Bytes(), r2.Body.Bytes()) {
		t.Fatalf("second read: %q, bodies equal=%v", r2.Header().Get("X-Cache"),
			bytes.Equal(r1.Body.Bytes(), r2.Body.Bytes()))
	}
	// Bypass answers must be bit-identical to the cached ones.
	rb := doReq(s, "", open+"&nocache=1")
	if rb.Header().Get("X-Cache") != "bypass" || !bytes.Equal(rb.Body.Bytes(), r2.Body.Bytes()) {
		t.Fatalf("bypass: %q, identical=%v", rb.Header().Get("X-Cache"),
			bytes.Equal(rb.Body.Bytes(), r2.Body.Bytes()))
	}

	// Ingest inside the open window: the watermark moves, the cached
	// answer must be refetched, and the fresh answer must match bypass.
	db.Append(0, 501, 5000)
	r3 := doReq(s, "", open)
	if r3.Header().Get("X-Cache") != "miss" {
		t.Fatalf("post-ingest read should miss, got %q", r3.Header().Get("X-Cache"))
	}
	if bytes.Equal(r3.Body.Bytes(), r1.Body.Bytes()) {
		t.Fatal("post-ingest answer identical to stale cache")
	}
	if rb := doReq(s, "", open+"&nocache=1"); !bytes.Equal(rb.Body.Bytes(), r3.Body.Bytes()) {
		t.Fatal("post-ingest cached and bypass answers differ")
	}

	// Sealed window: with raw retention off, a window wholly behind the
	// sealed horizon stays a hit across ingest (the sealed fast path).
	sealed := "/v1/nodes/0/window?t0=10&t1=50&res=1"
	if rr := doReq(s, "", sealed); rr.Header().Get("X-Cache") != "miss" {
		t.Fatalf("sealed first read: %q", rr.Header().Get("X-Cache"))
	}
	db.Append(0, 502, 6000)
	rs := doReq(s, "", sealed)
	if rs.Header().Get("X-Cache") != "hit" {
		t.Fatalf("sealed window should survive ingest, got %q", rs.Header().Get("X-Cache"))
	}
	if rb := doReq(s, "", sealed+"&nocache=1"); !bytes.Equal(rb.Body.Bytes(), rs.Body.Bytes()) {
		t.Fatal("sealed cached answer differs from bypass")
	}

	if rr := doReq(s, "", "/v1/nodes/0/window?t0=5&t1=1"); rr.Code != http.StatusBadRequest {
		t.Errorf("reversed window: %d", rr.Code)
	}
	if rr := doReq(s, "", "/v1/nodes/0/window?t0=0&t1=10&res=7"); rr.Code != http.StatusBadRequest {
		t.Errorf("unmaintained res: %d", rr.Code)
	}
	if rr := doReq(s, "", "/v1/nodes/88/window?t0=0&t1=10"); rr.Code != http.StatusNotFound {
		t.Errorf("unknown node: %d", rr.Code)
	}
}

// TestWindowConcurrentSameKey hammers one window key from many
// goroutines while ingest advances the node — every response must be a
// well-formed answer (200, valid JSON) and the run must be race-clean
// under -race -shuffle=on.
func TestWindowConcurrentSameKey(t *testing.T) {
	b, db := testBackend(t)
	s := NewServer(Options{})
	s.Bind(b)
	const workers = 8
	stop := make(chan struct{})
	var ingest sync.WaitGroup
	ingest.Add(1)
	go func() {
		defer ingest.Done()
		tt := 500.5
		for {
			select {
			case <-stop:
				return
			default:
			}
			db.Append(1, tt, 300)
			tt += 0.5
		}
	}()
	var queries sync.WaitGroup
	for w := 0; w < workers; w++ {
		queries.Add(1)
		go func() {
			defer queries.Done()
			for i := 0; i < 200; i++ {
				rr := doReq(s, "", "/v1/nodes/1/window?t0=100&t1=800&res=10")
				if rr.Code != http.StatusOK {
					t.Errorf("code = %d: %s", rr.Code, rr.Body)
					return
				}
				var rep WindowReport
				if err := json.Unmarshal(rr.Body.Bytes(), &rep); err != nil {
					t.Errorf("bad body: %v", err)
					return
				}
			}
		}()
	}
	queries.Wait()
	close(stop)
	ingest.Wait()
}

func TestQuotaExhaustionAndRefill(t *testing.T) {
	now := 0.0
	reg := obs.NewRegistry()
	b, _ := testBackend(t)
	s := NewServer(Options{
		QuotaRate:  2,
		QuotaBurst: 3,
		Now:        func() float64 { return now },
		Obs:        reg,
	})
	s.Bind(b)

	issue := func(tenant string, n int) (ok, rejected int) {
		for i := 0; i < n; i++ {
			if rr := doReq(s, tenant, "/v1/users"); rr.Code == http.StatusTooManyRequests {
				rejected++
			} else if rr.Code == http.StatusOK {
				ok++
			} else {
				t.Fatalf("unexpected code %d", rr.Code)
			}
		}
		return
	}

	// Burst of 3, then exact rejects.
	ok, rej := issue("alice", 10)
	if ok != 3 || rej != 7 {
		t.Fatalf("alice: ok=%d rej=%d, want 3/7", ok, rej)
	}
	// Another tenant has an independent bucket.
	ok, rej = issue("bob", 4)
	if ok != 3 || rej != 1 {
		t.Fatalf("bob: ok=%d rej=%d, want 3/1", ok, rej)
	}
	// Retry-After reflects the refill rate (2/s → under a second → 1).
	rr := doReq(s, "alice", "/v1/users")
	if rr.Code != http.StatusTooManyRequests || rr.Header().Get("Retry-After") != "1" {
		t.Fatalf("reject: code=%d retry-after=%q", rr.Code, rr.Header().Get("Retry-After"))
	}
	// Refill: 1 s at rate 2 buys exactly 2 tokens.
	now += 1
	ok, rej = issue("alice", 5)
	if ok != 2 || rej != 3 {
		t.Fatalf("after refill: ok=%d rej=%d, want 2/3", ok, rej)
	}
	// Reject counters are exact per tenant: 7+1+3 for alice, 1 for bob.
	alice := reg.CounterOf(obs.Key("davide_api_quota_rejects_total", "tenant", "alice")).Load()
	bob := reg.CounterOf(obs.Key("davide_api_quota_rejects_total", "tenant", "bob")).Load()
	if alice != 11 || bob != 1 {
		t.Fatalf("reject counters alice=%d bob=%d, want 11/1", alice, bob)
	}
	// A fresh tenant's window query lands as a cache miss.
	doReq(s, "carol", "/v1/nodes/0/window?t0=0&t1=10&res=1")
	if s.misses.Load() != 1 {
		t.Fatalf("misses = %d", s.misses.Load())
	}
}

func TestRackPowerAndReport(t *testing.T) {
	b, db := testBackend(t)
	n, err := node.New(0, node.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	h, err := powerapi.NewNodeHierarchy(n)
	if err != nil {
		t.Fatal(err)
	}
	b.Power = h
	s := NewServer(Options{})
	s.Bind(b)

	rr := doReq(s, "", "/v1/racks/1/power")
	if rr.Code != http.StatusOK {
		t.Fatalf("rack power: %d %s", rr.Code, rr.Body)
	}
	var rp RackPower
	if err := json.Unmarshal(rr.Body.Bytes(), &rp); err != nil {
		t.Fatal(err)
	}
	// Rack 1 is nodes 2 and 3; each node's newest sample is at t=500.
	var want float64
	for _, nd := range []int{2, 3} {
		tt, w, err := db.Latest(nd)
		if err != nil || tt != 500 {
			t.Fatalf("latest(%d) = %v,%v,%v", nd, tt, w, err)
		}
		want += w
	}
	if rp.FirstNode != 2 || rp.Nodes != 2 || math.Abs(rp.PowerW-want) > 1e-9 || rp.AsOf != 500 {
		t.Errorf("rack = %+v, want power %v", rp, want)
	}
	if rr := doReq(s, "", "/v1/racks/9/power"); rr.Code != http.StatusNotFound {
		t.Errorf("out-of-range rack: %d", rr.Code)
	}

	rr = doReq(s, "", "/v1/power/report?root=node00")
	if rr.Code != http.StatusOK || !strings.Contains(rr.Body.String(), "node00") {
		t.Errorf("report: %d\n%s", rr.Code, rr.Body)
	}
	if rr := doReq(s, "", "/v1/power/report?root=missing"); rr.Code != http.StatusNotFound {
		t.Errorf("missing root: %d", rr.Code)
	}
}

func TestClientRoundTrip(t *testing.T) {
	b, db := testBackend(t)
	now := 0.0
	s, err := Serve("127.0.0.1:0", Options{QuotaRate: 5, QuotaBurst: 5, Now: func() float64 { return now }})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	s.Bind(b)

	c := NewClient(s.Addr(), "tester")
	users, err := c.Users()
	if err != nil || len(users) != 2 {
		t.Fatalf("users = %v, %v", users, err)
	}
	rec, err := c.Job(3)
	if err != nil || rec.App != "qcd" {
		t.Fatalf("job = %+v, %v", rec, err)
	}
	win, err := c.Window(0, 100, 200, 10)
	if err != nil {
		t.Fatal(err)
	}
	wantE, err := db.EnergyAt(0, 100, 200, 10)
	if err != nil || math.Abs(win.EnergyJ-wantE) > 1e-9 {
		t.Fatalf("window energy %v, want %v (%v)", win.EnergyJ, wantE, err)
	}
	// Quota: the 5th call spends the last burst token; the 6th must
	// surface a typed QuotaError.
	if _, err := c.RackPower(0); err != nil {
		t.Fatal(err)
	}
	phases, err := c.JobPhases(1)
	if err != nil || len(phases) != 1 || phases[0].Name != "cfd" {
		t.Fatalf("job phases = %+v, %v", phases, err)
	}
	_, err = c.Users()
	var qe *QuotaError
	if !errors.As(err, &qe) || qe.RetryAfter < 1 {
		t.Fatalf("err = %v, want QuotaError with Retry-After >= 1", err)
	}
}
