package sensor

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
)

// Sample is one timestamped power reading.
type Sample struct {
	T float64 // seconds (in the sampler's own clock)
	P float64 // watts
}

// ADC models the BeagleBone Black's 12-bit SAR converter (TI Sitara
// AM335x): fixed sampling rate, full-scale range, quantisation, additive
// Gaussian noise and aperture jitter. The paper runs it at 800 kS/s
// (hardware-averaged from the 1.6 MS/s maximum across channels).
type ADC struct {
	Rate      float64 // samples per second
	Bits      int     // resolution
	FullScale float64 // watts mapped to the top code
	NoiseLSB  float64 // Gaussian noise sigma, in LSBs
	JitterSec float64 // Gaussian aperture jitter sigma, seconds
	rng       *rand.Rand
}

// NewADC constructs an ADC. seed makes the noise deterministic.
func NewADC(rate float64, bits int, fullScale, noiseLSB, jitterSec float64, seed int64) (*ADC, error) {
	switch {
	case rate <= 0:
		return nil, errors.New("sensor: ADC rate must be positive")
	case bits < 1 || bits > 24:
		return nil, fmt.Errorf("sensor: ADC bits %d out of range [1,24]", bits)
	case fullScale <= 0:
		return nil, errors.New("sensor: ADC full scale must be positive")
	case noiseLSB < 0 || jitterSec < 0:
		return nil, errors.New("sensor: negative noise or jitter")
	}
	return &ADC{
		Rate:      rate,
		Bits:      bits,
		FullScale: fullScale,
		NoiseLSB:  noiseLSB,
		JitterSec: jitterSec,
		rng:       rand.New(rand.NewSource(seed)),
	}, nil
}

// BBBADC returns the paper's converter: 12-bit SAR, 800 kS/s effective,
// sized for a 3 kW node backplane, with 0.5 LSB RMS noise and 50 ns jitter.
func BBBADC(seed int64) *ADC {
	a, err := NewADC(800e3, 12, 3000, 0.5, 50e-9, seed)
	if err != nil {
		panic("sensor: BBBADC defaults invalid: " + err.Error())
	}
	return a
}

// LSB returns the quantisation step in watts.
func (a *ADC) LSB() float64 { return a.FullScale / float64(uint64(1)<<a.Bits) }

// Convert quantises one instantaneous power value (without sampling-time
// effects): clamp to [0, FullScale], add noise, round to the LSB grid.
func (a *ADC) Convert(p float64) float64 {
	lsb := a.LSB()
	p += a.rng.NormFloat64() * a.NoiseLSB * lsb
	if p < 0 {
		p = 0
	}
	if p > a.FullScale {
		p = a.FullScale
	}
	code := math.Round(p / lsb)
	return code * lsb
}

// SampleSignal samples s over [t0, t1) at the ADC rate, applying jitter to
// the sampling instants and quantising each reading. The returned sample
// timestamps are the *nominal* (jitter-free) instants, as a real converter
// reports them.
func (a *ADC) SampleSignal(s Signal, t0, t1 float64) ([]Sample, error) {
	if t1 < t0 {
		return nil, errInvalidWindow
	}
	n := int(math.Floor((t1 - t0) * a.Rate))
	out := make([]Sample, 0, n)
	dt := 1 / a.Rate
	for i := 0; i < n; i++ {
		nominal := t0 + float64(i)*dt
		actual := nominal + a.rng.NormFloat64()*a.JitterSec
		out = append(out, Sample{T: nominal, P: a.Convert(s.PowerAt(actual))})
	}
	return out, nil
}

var errInvalidWindow = errors.New("sensor: t1 < t0")

// Decimator performs N:1 boxcar averaging, the hardware decimation the
// paper uses to turn 800 kS/s raw conversions into 50 kS/s power samples
// (N = 16). Averaging rather than dropping preserves energy content and
// suppresses noise by sqrt(N).
type Decimator struct {
	N int
}

// NewDecimator creates an N:1 decimator.
func NewDecimator(n int) (*Decimator, error) {
	if n < 1 {
		return nil, errors.New("sensor: decimation factor must be >= 1")
	}
	return &Decimator{N: n}, nil
}

// Decimate averages consecutive groups of N samples. The output timestamp
// is the centre of each group. A trailing partial group is dropped (as the
// hardware does).
func (d *Decimator) Decimate(in []Sample) []Sample {
	if d.N == 1 {
		out := make([]Sample, len(in))
		copy(out, in)
		return out
	}
	groups := len(in) / d.N
	out := make([]Sample, 0, groups)
	for g := 0; g < groups; g++ {
		sumP, sumT := 0.0, 0.0
		for i := g * d.N; i < (g+1)*d.N; i++ {
			sumP += in[i].P
			sumT += in[i].T
		}
		out = append(out, Sample{T: sumT / float64(d.N), P: sumP / float64(d.N)})
	}
	return out
}

// EnergyFromSamples estimates energy over [t0, t1] from a sample train by
// rectangle integration at the sampling interval, the estimator a telemetry
// consumer would apply. Samples are assumed equally spaced; the interval is
// inferred from the first two samples. Returns an error with fewer than two
// samples.
func EnergyFromSamples(samples []Sample, t0, t1 float64) (float64, error) {
	if len(samples) < 2 {
		return 0, errors.New("sensor: need at least two samples")
	}
	if t1 < t0 {
		return 0, errInvalidWindow
	}
	dt := samples[1].T - samples[0].T
	if dt <= 0 {
		return 0, errors.New("sensor: non-increasing sample timestamps")
	}
	e := 0.0
	for _, s := range samples {
		// Each sample covers [s.T, s.T+dt) clipped to the window.
		lo := math.Max(s.T, t0)
		hi := math.Min(s.T+dt, t1)
		if hi > lo {
			e += s.P * (hi - lo)
		}
	}
	return e, nil
}

// MeanPower returns the average power of a sample train.
func MeanPower(samples []Sample) (float64, error) {
	if len(samples) == 0 {
		return 0, errors.New("sensor: no samples")
	}
	s := 0.0
	for _, x := range samples {
		s += x.P
	}
	return s / float64(len(samples)), nil
}
