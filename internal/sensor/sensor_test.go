package sensor

import (
	"math"
	"testing"
	"testing/quick"
)

func almost(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestConstSignal(t *testing.T) {
	c := Const(100)
	if c.PowerAt(5) != 100 {
		t.Error("PowerAt wrong")
	}
	e, err := c.Energy(0, 10)
	if err != nil || e != 1000 {
		t.Errorf("Energy = %v,%v want 1000", e, err)
	}
	if _, err := c.Energy(5, 1); err == nil {
		t.Error("reversed window should error")
	}
}

func TestSineSignalEnergy(t *testing.T) {
	s := Sine{Offset: 50, Amp: 10, Freq: 2}
	// Over whole periods the sine integrates to zero.
	e, err := s.Energy(0, 1)
	if err != nil || !almost(e, 50, 1e-9) {
		t.Errorf("Energy = %v,%v want 50", e, err)
	}
	// Zero-frequency degenerates to a constant.
	dc := Sine{Offset: 50, Amp: 10, Freq: 0, Phase: math.Pi / 2}
	e, err = dc.Energy(0, 2)
	if err != nil || !almost(e, 120, 1e-9) {
		t.Errorf("DC sine energy = %v,%v want 120", e, err)
	}
	if _, err := s.Energy(1, 0); err == nil {
		t.Error("reversed window should error")
	}
}

func TestSineEnergyMatchesNumeric(t *testing.T) {
	s := Sine{Offset: 100, Amp: 30, Freq: 7.3, Phase: 0.4}
	want := numericEnergy(s, 0.1, 2.7, 1e6)
	got, err := s.Energy(0.1, 2.7)
	if err != nil || !almost(got, want, 1e-3) {
		t.Errorf("Energy = %v,%v want ~%v", got, err, want)
	}
}

func TestSquareSignal(t *testing.T) {
	q := Square{Low: 100, High: 300, Period: 1, Duty: 0.25}
	if q.PowerAt(0.1) != 300 {
		t.Error("high phase wrong")
	}
	if q.PowerAt(0.5) != 100 {
		t.Error("low phase wrong")
	}
	if q.PowerAt(-0.9) != 300 { // -0.9 mod 1 = 0.1
		t.Error("negative time wrapping wrong")
	}
	// Mean = 300*0.25 + 100*0.75 = 150 per unit time.
	e, err := q.Energy(0, 4)
	if err != nil || !almost(e, 600, 1e-9) {
		t.Errorf("Energy = %v,%v want 600", e, err)
	}
	// Partial period.
	e, err = q.Energy(0, 0.25)
	if err != nil || !almost(e, 75, 1e-9) {
		t.Errorf("head energy = %v,%v want 75", e, err)
	}
	e, err = q.Energy(0.25, 1)
	if err != nil || !almost(e, 75, 1e-9) {
		t.Errorf("tail energy = %v,%v want 75", e, err)
	}
}

func TestSquareValidation(t *testing.T) {
	if err := (Square{Period: 0, Duty: 0.5}).Validate(); err == nil {
		t.Error("zero period should error")
	}
	if err := (Square{Period: 1, Duty: 0}).Validate(); err == nil {
		t.Error("duty 0 should error")
	}
	if err := (Square{Period: 1, Duty: 1}).Validate(); err == nil {
		t.Error("duty 1 should error")
	}
	if _, err := (Square{Period: 1, Duty: 0.5}).Energy(1, 0); err == nil {
		t.Error("reversed window should error")
	}
}

func TestSquareEnergyMatchesNumeric(t *testing.T) {
	q := Square{Low: 80, High: 250, Period: 0.013, Duty: 0.37, Phase: 0.002}
	want := numericEnergy(q, 0.05, 0.9, 2e6)
	got, err := q.Energy(0.05, 0.9)
	if err != nil || !almost(got, want, 0.05) {
		t.Errorf("Energy = %v,%v want ~%v", got, err, want)
	}
}

func TestSumSignal(t *testing.T) {
	s := Sum{Const(100), Sine{Amp: 5, Freq: 50}}
	if !almost(s.PowerAt(0), 100, 1e-12) {
		t.Error("Sum PowerAt wrong")
	}
	e, err := s.Energy(0, 1)
	if err != nil || !almost(e, 100, 1e-9) {
		t.Errorf("Sum energy = %v,%v want 100", e, err)
	}
	bad := Sum{Const(1), Square{}}
	if _, err := bad.Energy(0, 1); err == nil {
		t.Error("Sum with invalid member should error")
	}
}

func TestPiecewise(t *testing.T) {
	p := NewPiecewise(0, 100)
	if err := p.Set(10, 200); err != nil {
		t.Fatal(err)
	}
	if err := p.Set(20, 50); err != nil {
		t.Fatal(err)
	}
	if p.Segments() != 3 || p.Start() != 0 || p.End() != 20 {
		t.Errorf("segments/start/end = %d/%v/%v", p.Segments(), p.Start(), p.End())
	}
	for _, c := range []struct{ t, want float64 }{
		{-5, 100}, {0, 100}, {5, 100}, {10, 200}, {15, 200}, {20, 50}, {100, 50},
	} {
		if got := p.PowerAt(c.t); got != c.want {
			t.Errorf("PowerAt(%v) = %v, want %v", c.t, got, c.want)
		}
	}
	e, err := p.Energy(0, 20)
	if err != nil || !almost(e, 100*10+200*10, 1e-9) {
		t.Errorf("Energy = %v,%v want 3000", e, err)
	}
	// Window extending past the last breakpoint holds the last power.
	e, err = p.Energy(15, 25)
	if err != nil || !almost(e, 200*5+50*5, 1e-9) {
		t.Errorf("Energy(15,25) = %v,%v want 1250", e, err)
	}
	// Window before the first breakpoint extends the first power backwards.
	e, err = p.Energy(-10, 5)
	if err != nil || !almost(e, 100*15, 1e-9) {
		t.Errorf("Energy(-10,5) = %v,%v want 1500", e, err)
	}
	if _, err := p.Energy(5, 1); err == nil {
		t.Error("reversed window should error")
	}
	z, err := p.Energy(5, 5)
	if err != nil || z != 0 {
		t.Errorf("zero window energy = %v,%v", z, err)
	}
}

func TestPiecewiseSetRules(t *testing.T) {
	p := NewPiecewise(0, 1)
	if err := p.Set(-1, 5); err == nil {
		t.Error("past breakpoint should error")
	}
	if err := p.Set(0, 7); err != nil { // overwrite current
		t.Fatal(err)
	}
	if p.PowerAt(0) != 7 || p.Segments() != 1 {
		t.Errorf("overwrite failed: %v segments %d", p.PowerAt(0), p.Segments())
	}
	if err := p.Set(1, math.NaN()); err == nil {
		t.Error("NaN power should error")
	}
}

func TestADCValidation(t *testing.T) {
	if _, err := NewADC(0, 12, 100, 0, 0, 1); err == nil {
		t.Error("zero rate should error")
	}
	if _, err := NewADC(1e3, 0, 100, 0, 0, 1); err == nil {
		t.Error("zero bits should error")
	}
	if _, err := NewADC(1e3, 30, 100, 0, 0, 1); err == nil {
		t.Error("too many bits should error")
	}
	if _, err := NewADC(1e3, 12, 0, 0, 0, 1); err == nil {
		t.Error("zero full-scale should error")
	}
	if _, err := NewADC(1e3, 12, 100, -1, 0, 1); err == nil {
		t.Error("negative noise should error")
	}
}

func TestADCQuantisation(t *testing.T) {
	a, err := NewADC(1e3, 12, 4096, 0, 0, 1) // LSB = 1 W exactly
	if err != nil {
		t.Fatal(err)
	}
	if a.LSB() != 1 {
		t.Fatalf("LSB = %v, want 1", a.LSB())
	}
	if got := a.Convert(100.4); got != 100 {
		t.Errorf("Convert(100.4) = %v, want 100", got)
	}
	if got := a.Convert(100.6); got != 101 {
		t.Errorf("Convert(100.6) = %v, want 101", got)
	}
	if got := a.Convert(-5); got != 0 {
		t.Errorf("Convert(-5) = %v, want 0 (clamped)", got)
	}
	if got := a.Convert(9999); got != 4096 {
		t.Errorf("Convert(9999) = %v, want 4096 (clamped)", got)
	}
}

func TestADCSampleCount(t *testing.T) {
	a := BBBADC(1)
	samples, err := a.SampleSignal(Const(1000), 0, 0.01)
	if err != nil {
		t.Fatal(err)
	}
	if len(samples) != 8000 { // 800 kS/s * 10 ms
		t.Errorf("samples = %d, want 8000", len(samples))
	}
	if _, err := a.SampleSignal(Const(1), 1, 0); err == nil {
		t.Error("reversed window should error")
	}
}

func TestADCNoiseStatistics(t *testing.T) {
	a, err := NewADC(100e3, 12, 3000, 2.0, 0, 42)
	if err != nil {
		t.Fatal(err)
	}
	samples, err := a.SampleSignal(Const(1500), 0, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	mean, err := MeanPower(samples)
	if err != nil {
		t.Fatal(err)
	}
	// Noise is zero-mean: average should be close to truth.
	if !almost(mean, 1500, 1.0) {
		t.Errorf("mean = %v, want ~1500", mean)
	}
}

func TestDecimator(t *testing.T) {
	if _, err := NewDecimator(0); err == nil {
		t.Error("factor 0 should error")
	}
	d, err := NewDecimator(4)
	if err != nil {
		t.Fatal(err)
	}
	in := []Sample{
		{0, 1}, {1, 2}, {2, 3}, {3, 4},
		{4, 10}, {5, 10}, {6, 10}, {7, 10},
		{8, 99}, // trailing partial group dropped
	}
	out := d.Decimate(in)
	if len(out) != 2 {
		t.Fatalf("out = %v, want 2 groups", out)
	}
	if !almost(out[0].P, 2.5, 1e-12) || !almost(out[0].T, 1.5, 1e-12) {
		t.Errorf("group0 = %+v", out[0])
	}
	if !almost(out[1].P, 10, 1e-12) || !almost(out[1].T, 5.5, 1e-12) {
		t.Errorf("group1 = %+v", out[1])
	}
	// N=1 is identity (copy).
	d1, _ := NewDecimator(1)
	id := d1.Decimate(in)
	if len(id) != len(in) || id[0] != in[0] {
		t.Error("N=1 should copy input")
	}
	id[0].P = -1
	if in[0].P == -1 {
		t.Error("N=1 must copy, not alias")
	}
}

func TestDecimationPreservesEnergy(t *testing.T) {
	// Boxcar decimation preserves the mean, hence the rectangle-integrated
	// energy over whole groups.
	a, err := NewADC(800e3, 12, 3000, 0, 0, 7)
	if err != nil {
		t.Fatal(err)
	}
	sig := Square{Low: 500, High: 2500, Period: 1e-3, Duty: 0.5}
	raw, err := a.SampleSignal(sig, 0, 0.064)
	if err != nil {
		t.Fatal(err)
	}
	d, _ := NewDecimator(16)
	dec := d.Decimate(raw)
	eRaw, err := EnergyFromSamples(raw, 0, 0.064)
	if err != nil {
		t.Fatal(err)
	}
	eDec, err := EnergyFromSamples(dec, 0, 0.064)
	if err != nil {
		t.Fatal(err)
	}
	if !almost(eRaw, eDec, 0.02*eRaw) {
		t.Errorf("decimated energy %v deviates from raw %v", eDec, eRaw)
	}
}

func TestEnergyFromSamplesExactForConst(t *testing.T) {
	samples := []Sample{{0, 100}, {1, 100}, {2, 100}, {3, 100}}
	e, err := EnergyFromSamples(samples, 0, 4)
	if err != nil || !almost(e, 400, 1e-12) {
		t.Errorf("energy = %v,%v want 400", e, err)
	}
	// Clipped window.
	e, err = EnergyFromSamples(samples, 1, 3)
	if err != nil || !almost(e, 200, 1e-12) {
		t.Errorf("clipped energy = %v,%v want 200", e, err)
	}
}

func TestEnergyFromSamplesErrors(t *testing.T) {
	if _, err := EnergyFromSamples(nil, 0, 1); err == nil {
		t.Error("empty should error")
	}
	if _, err := EnergyFromSamples([]Sample{{0, 1}}, 0, 1); err == nil {
		t.Error("single sample should error")
	}
	if _, err := EnergyFromSamples([]Sample{{0, 1}, {0, 1}}, 0, 1); err == nil {
		t.Error("non-increasing timestamps should error")
	}
	if _, err := EnergyFromSamples([]Sample{{0, 1}, {1, 1}}, 1, 0); err == nil {
		t.Error("reversed window should error")
	}
	if _, err := MeanPower(nil); err == nil {
		t.Error("MeanPower empty should error")
	}
}

// Property: ADC sampling of a constant signal with no noise recovers the
// value to within one LSB.
func TestADCAccuracyProperty(t *testing.T) {
	f := func(raw float64) bool {
		p := math.Mod(math.Abs(raw), 3000)
		a, err := NewADC(10e3, 12, 3000, 0, 0, 1)
		if err != nil {
			return false
		}
		got := a.Convert(p)
		return math.Abs(got-p) <= a.LSB()/2+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// Property: piecewise energy is additive: E(a,c) = E(a,b) + E(b,c).
func TestPiecewiseAdditiveProperty(t *testing.T) {
	f := func(powers []float64, cut float64) bool {
		p := NewPiecewise(0, 100)
		t0 := 0.0
		for i, raw := range powers {
			if i > 10 {
				break
			}
			t0 += 1
			if err := p.Set(t0, math.Mod(math.Abs(raw), 5000)); err != nil {
				return false
			}
		}
		end := t0 + 1
		b := math.Mod(math.Abs(cut), end)
		e1, err1 := p.Energy(0, b)
		e2, err2 := p.Energy(b, end)
		e, err := p.Energy(0, end)
		if err1 != nil || err2 != nil || err != nil {
			return false
		}
		return almost(e1+e2, e, 1e-6*math.Max(1, e))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// numericEnergy integrates a signal by brute-force midpoint rule, used to
// cross-check the closed forms.
func numericEnergy(s Signal, t0, t1 float64, steps int) float64 {
	dt := (t1 - t0) / float64(steps)
	e := 0.0
	for i := 0; i < steps; i++ {
		e += s.PowerAt(t0+(float64(i)+0.5)*dt) * dt
	}
	return e
}

// TestAnalyticVsBruteForce is the DESIGN.md §5.1 ablation: analytic energy
// agrees with brute-force sampling.
func TestAnalyticVsBruteForce(t *testing.T) {
	sig := Sum{
		Const(400),
		Square{Low: 0, High: 1200, Period: 0.004, Duty: 0.3},
		Sine{Amp: 20, Freq: 310},
	}
	want := numericEnergy(sig, 0, 0.5, 4_000_000)
	got, err := sig.Energy(0, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if !almost(got, want, 1e-3*want) {
		t.Errorf("analytic %v vs numeric %v", got, want)
	}
}
