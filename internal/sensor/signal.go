// Package sensor models the power-measurement chain of the D.A.V.I.D.E.
// energy gateway (§III-A1 of the paper): analogue power signals on the
// node's power backplane, the BeagleBone Black's 12-bit SAR ADC sampling at
// up to 800 kS/s, and the hardware boxcar decimation down to 50 kS/s.
//
// Ground-truth power is represented analytically (Signal) so that exact
// energies are available in closed form; samplers then observe that signal
// with quantisation, noise and their own timing. This lets experiments
// measure *estimation error* against a known truth — the core of the
// paper's argument for high-rate, well-synchronised monitoring.
package sensor

import (
	"errors"
	"fmt"
	"math"
	"sort"
)

// Signal is an analytic power trace: instantaneous power in watts as a
// function of time in seconds, with closed-form energy integration.
type Signal interface {
	// PowerAt returns instantaneous power at time t.
	PowerAt(t float64) float64
	// Energy returns the exact integral of power over [t0, t1].
	Energy(t0, t1 float64) (float64, error)
}

// Const is a constant-power signal.
type Const float64

// PowerAt implements Signal.
func (c Const) PowerAt(float64) float64 { return float64(c) }

// Energy implements Signal.
func (c Const) Energy(t0, t1 float64) (float64, error) {
	if t1 < t0 {
		return 0, errors.New("sensor: t1 < t0")
	}
	return float64(c) * (t1 - t0), nil
}

// Sine is a sinusoidal power component: Offset + Amp*sin(2*pi*Freq*t+Phase).
// Used to emulate VRM ripple and periodic application phases.
type Sine struct {
	Offset, Amp, Freq, Phase float64
}

// PowerAt implements Signal.
func (s Sine) PowerAt(t float64) float64 {
	return s.Offset + s.Amp*math.Sin(2*math.Pi*s.Freq*t+s.Phase)
}

// Energy implements Signal.
func (s Sine) Energy(t0, t1 float64) (float64, error) {
	if t1 < t0 {
		return 0, errors.New("sensor: t1 < t0")
	}
	if s.Freq == 0 {
		return (s.Offset + s.Amp*math.Sin(s.Phase)) * (t1 - t0), nil
	}
	w := 2 * math.Pi * s.Freq
	anti := func(t float64) float64 { return s.Offset*t - s.Amp/w*math.Cos(w*t+s.Phase) }
	return anti(t1) - anti(t0), nil
}

// Square is a square-wave power signal alternating between Low and High
// with the given Period and duty cycle (fraction of the period at High).
// This is the classic aliasing stressor: application phases shorter than
// the sampling interval of slow monitors.
type Square struct {
	Low, High float64
	Period    float64
	Duty      float64 // (0,1)
	Phase     float64 // time offset in seconds
}

// Validate reports whether the square wave is well-formed.
func (q Square) Validate() error {
	if q.Period <= 0 {
		return errors.New("sensor: square period must be positive")
	}
	if q.Duty <= 0 || q.Duty >= 1 {
		return errors.New("sensor: square duty must be in (0,1)")
	}
	return nil
}

// PowerAt implements Signal.
func (q Square) PowerAt(t float64) float64 {
	frac := math.Mod(t-q.Phase, q.Period)
	if frac < 0 {
		frac += q.Period
	}
	if frac < q.Duty*q.Period {
		return q.High
	}
	return q.Low
}

// Energy implements Signal. Exact: counts whole periods plus the partial
// head and tail.
func (q Square) Energy(t0, t1 float64) (float64, error) {
	if err := q.Validate(); err != nil {
		return 0, err
	}
	if t1 < t0 {
		return 0, errors.New("sensor: t1 < t0")
	}
	// Energy over [0, t] from phase origin, then difference.
	e := func(t float64) float64 {
		full := math.Floor(t / q.Period)
		rem := t - full*q.Period
		perPeriod := q.High*q.Duty*q.Period + q.Low*(1-q.Duty)*q.Period
		head := 0.0
		hi := q.Duty * q.Period
		if rem <= hi {
			head = q.High * rem
		} else {
			head = q.High*hi + q.Low*(rem-hi)
		}
		return full*perPeriod + head
	}
	return e(t1-q.Phase) - e(t0-q.Phase), nil
}

// Sum superimposes several signals (e.g. baseline + ripple + phase bursts).
type Sum []Signal

// PowerAt implements Signal.
func (ss Sum) PowerAt(t float64) float64 {
	p := 0.0
	for _, s := range ss {
		p += s.PowerAt(t)
	}
	return p
}

// Energy implements Signal.
func (ss Sum) Energy(t0, t1 float64) (float64, error) {
	e := 0.0
	for _, s := range ss {
		v, err := s.Energy(t0, t1)
		if err != nil {
			return 0, err
		}
		e += v
	}
	return e, nil
}

// Piecewise is a piecewise-constant power trace built from simulation
// events: power changes at breakpoints and holds in between. It is the
// bridge between the virtual-time simulation (node power changes when jobs
// start/stop or DVFS changes) and the sampling chain.
type Piecewise struct {
	times  []float64 // breakpoint times, ascending
	powers []float64 // power from times[i] until times[i+1]
}

// NewPiecewise creates a trace with the given initial power from time t0.
func NewPiecewise(t0, power float64) *Piecewise {
	return &Piecewise{times: []float64{t0}, powers: []float64{power}}
}

// Set records a power change at time t. Times must be non-decreasing; a
// repeated time overwrites the last segment.
func (p *Piecewise) Set(t, power float64) error {
	last := p.times[len(p.times)-1]
	switch {
	case math.IsNaN(t) || math.IsNaN(power):
		return errors.New("sensor: NaN in piecewise trace")
	case t < last:
		return fmt.Errorf("sensor: breakpoint %g before last %g", t, last)
	case t == last:
		p.powers[len(p.powers)-1] = power
	default:
		p.times = append(p.times, t)
		p.powers = append(p.powers, power)
	}
	return nil
}

// Segments returns the number of constant segments.
func (p *Piecewise) Segments() int { return len(p.times) }

// Start returns the first breakpoint time.
func (p *Piecewise) Start() float64 { return p.times[0] }

// End returns the last breakpoint time.
func (p *Piecewise) End() float64 { return p.times[len(p.times)-1] }

// PowerAt implements Signal. Before the first breakpoint it returns the
// first power; after the last it holds the last power.
func (p *Piecewise) PowerAt(t float64) float64 {
	i := sort.SearchFloat64s(p.times, t)
	// SearchFloat64s returns the first index with times[i] >= t.
	if i < len(p.times) && p.times[i] == t {
		return p.powers[i]
	}
	if i == 0 {
		return p.powers[0]
	}
	return p.powers[i-1]
}

// Energy implements Signal with exact piecewise integration.
func (p *Piecewise) Energy(t0, t1 float64) (float64, error) {
	if t1 < t0 {
		return 0, errors.New("sensor: t1 < t0")
	}
	if t1 == t0 {
		return 0, nil
	}
	e := 0.0
	// Walk segments overlapping [t0, t1].
	for i := range p.times {
		segStart := p.times[i]
		segEnd := math.Inf(1)
		if i+1 < len(p.times) {
			segEnd = p.times[i+1]
		}
		lo := math.Max(segStart, t0)
		hi := math.Min(segEnd, t1)
		if i == 0 && t0 < segStart {
			// Extend the first power backwards.
			e += p.powers[0] * (math.Min(segStart, t1) - t0)
		}
		if hi > lo {
			e += p.powers[i] * (hi - lo)
		}
	}
	return e, nil
}
