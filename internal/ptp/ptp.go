// Package ptp simulates IEEE 1588 Precision Time Protocol synchronisation
// between the D.A.V.I.D.E. energy gateways and the facility grandmaster
// (§III-A1 of the paper; evaluated for HPC sensor time-stamping by Libri et
// al. [13]). The paper relies on PTP so that power samples taken on
// different nodes carry timestamps that can be correlated with each other
// and with application phase information.
//
// The model contains:
//
//   - Clock: a drifting local oscillator with initial offset, frequency
//     error (ppm) and random-walk jitter;
//   - the two-step offset/delay measurement (SYNC / DELAY_REQ exchange)
//     over a network path with configurable delay, asymmetry and jitter;
//   - a PI servo that steers the slave clock, as ptp4l does.
//
// All times are float64 seconds. "Global" time is the simulation's virtual
// time; each clock converts global time to its local reading.
package ptp

import (
	"errors"
	"math"
	"math/rand"
)

// Clock is a free-running local oscillator.
type Clock struct {
	offset   float64 // current offset from global time, seconds
	freqErr  float64 // fractional frequency error (1e-6 = 1 ppm)
	walkStep float64 // RMS of the random-walk increment per Advance call
	lastT    float64 // last global time observed
	rng      *rand.Rand
	// servo corrections
	freqAdj float64 // steering applied to frequency
}

// NewClock creates a clock with the given initial offset (s), frequency
// error (fractional, e.g. 25e-6 for 25 ppm) and random-walk RMS per second.
func NewClock(offset, freqErr, walkPerSec float64, seed int64) (*Clock, error) {
	if walkPerSec < 0 {
		return nil, errors.New("ptp: negative random-walk amplitude")
	}
	if math.Abs(freqErr) > 1e-3 {
		return nil, errors.New("ptp: frequency error beyond 1000 ppm is not an oscillator")
	}
	return &Clock{offset: offset, freqErr: freqErr, walkStep: walkPerSec, rng: rand.New(rand.NewSource(seed))}, nil
}

// TypicalOscillator returns a clock with the jitter profile of the
// BeagleBone's crystal: up to ±30 ppm static error, 1 µs/√s random walk and
// a random initial offset up to ±10 ms.
func TypicalOscillator(seed int64) *Clock {
	rng := rand.New(rand.NewSource(seed))
	c, err := NewClock(
		(rng.Float64()*2-1)*10e-3,
		(rng.Float64()*2-1)*30e-6,
		1e-6,
		seed^0x7a5,
	)
	if err != nil {
		panic("ptp: TypicalOscillator defaults invalid: " + err.Error())
	}
	return c
}

// Advance moves the clock's notion of elapsed global time to t, accumulating
// drift and random walk. Must be called with non-decreasing t.
func (c *Clock) Advance(t float64) error {
	dt := t - c.lastT
	if dt < 0 {
		return errors.New("ptp: time went backwards")
	}
	c.offset += (c.freqErr + c.freqAdj) * dt
	if c.walkStep > 0 && dt > 0 {
		c.offset += c.rng.NormFloat64() * c.walkStep * math.Sqrt(dt)
	}
	c.lastT = t
	return nil
}

// Read returns the local reading at global time t (advancing the clock).
func (c *Clock) Read(t float64) (float64, error) {
	if err := c.Advance(t); err != nil {
		return 0, err
	}
	return t + c.offset, nil
}

// Offset returns the clock's current offset from global time.
func (c *Clock) Offset() float64 { return c.offset }

// Step applies an immediate phase correction (servo output).
func (c *Clock) Step(delta float64) { c.offset += delta }

// AdjustFrequency sets the steering term added to the oscillator frequency.
func (c *Clock) AdjustFrequency(f float64) { c.freqAdj = f }

// FrequencyAdjustment returns the current steering term.
func (c *Clock) FrequencyAdjustment() float64 { return c.freqAdj }

// Path is the network path between master and slave for PTP messages.
type Path struct {
	MeanDelay float64 // one-way mean delay, seconds
	Asymmetry float64 // forward-minus-reverse delay difference, seconds
	JitterRMS float64 // per-message Gaussian jitter, seconds
	rng       *rand.Rand
}

// NewPath creates a network path. Hardware-timestamped PTP on a local
// switch has ~1 µs delay and tens of ns jitter; software timestamping has
// far more.
func NewPath(mean, asym, jitter float64, seed int64) (*Path, error) {
	if mean <= 0 {
		return nil, errors.New("ptp: mean delay must be positive")
	}
	if jitter < 0 {
		return nil, errors.New("ptp: negative jitter")
	}
	if math.Abs(asym) >= 2*mean {
		return nil, errors.New("ptp: asymmetry exceeds path delay")
	}
	return &Path{MeanDelay: mean, Asymmetry: asym, JitterRMS: jitter, rng: rand.New(rand.NewSource(seed))}, nil
}

// forwardDelay returns one sampled master->slave delay.
func (p *Path) forwardDelay() float64 {
	d := p.MeanDelay + p.Asymmetry/2 + p.rng.NormFloat64()*p.JitterRMS
	if d < 1e-9 {
		d = 1e-9
	}
	return d
}

// reverseDelay returns one sampled slave->master delay.
func (p *Path) reverseDelay() float64 {
	d := p.MeanDelay - p.Asymmetry/2 + p.rng.NormFloat64()*p.JitterRMS
	if d < 1e-9 {
		d = 1e-9
	}
	return d
}

// Measurement is the result of one SYNC/DELAY_REQ exchange.
type Measurement struct {
	OffsetEst float64 // estimated slave-minus-master offset
	DelayEst  float64 // estimated one-way path delay
	T1        float64 // master departure (master clock)
	T2        float64 // slave arrival (slave clock)
	T3        float64 // slave departure (slave clock)
	T4        float64 // master arrival (master clock)
}

// Exchange performs one two-step PTP exchange at global time t between a
// master clock and a slave clock over the path. The slave issues its
// DELAY_REQ reqGap seconds after receiving SYNC.
func Exchange(t float64, master, slave *Clock, path *Path, reqGap float64) (Measurement, error) {
	if reqGap < 0 {
		return Measurement{}, errors.New("ptp: negative request gap")
	}
	fwd := path.forwardDelay()
	rev := path.reverseDelay()

	t1, err := master.Read(t)
	if err != nil {
		return Measurement{}, err
	}
	t2, err := slave.Read(t + fwd)
	if err != nil {
		return Measurement{}, err
	}
	t3, err := slave.Read(t + fwd + reqGap)
	if err != nil {
		return Measurement{}, err
	}
	t4, err := master.Read(t + fwd + reqGap + rev)
	if err != nil {
		return Measurement{}, err
	}
	m := Measurement{T1: t1, T2: t2, T3: t3, T4: t4}
	m.OffsetEst = ((t2 - t1) - (t4 - t3)) / 2
	m.DelayEst = ((t2 - t1) + (t4 - t3)) / 2
	return m, nil
}

// Servo is the PI controller steering a slave clock from PTP measurements,
// mirroring the linreg/PI servo in ptp4l.
type Servo struct {
	KP, KI    float64
	integral  float64
	stepLimit float64 // offsets larger than this are stepped, not slewed
}

// NewServo creates a PI servo. stepLimit is the |offset| above which the
// servo steps the clock instead of slewing (ptp4l default 20 µs... we use
// 1 ms to converge fast from cold start).
func NewServo(kp, ki, stepLimit float64) (*Servo, error) {
	if kp <= 0 || ki < 0 {
		return nil, errors.New("ptp: servo gains must be positive")
	}
	if stepLimit <= 0 {
		return nil, errors.New("ptp: step limit must be positive")
	}
	return &Servo{KP: kp, KI: ki, stepLimit: stepLimit}, nil
}

// DefaultServo returns gains that converge in a handful of exchanges at
// 1-second sync intervals.
func DefaultServo() *Servo {
	s, err := NewServo(0.7, 0.3, 1e-3)
	if err != nil {
		panic("ptp: DefaultServo defaults invalid: " + err.Error())
	}
	return s
}

// Apply feeds one measurement into the servo, correcting the slave clock.
// interval is the time between exchanges; the integral term uses it to turn
// residual offsets into a frequency correction, so the servo learns the
// oscillator's static frequency error (as ptp4l's PI servo does).
func (s *Servo) Apply(m Measurement, slave *Clock, interval float64) {
	off := m.OffsetEst
	if math.Abs(off) > s.stepLimit {
		slave.Step(-off)
		s.integral = 0
		slave.AdjustFrequency(0)
		return
	}
	if interval <= 0 {
		interval = 1
	}
	s.integral += s.KI * off / interval
	slave.Step(-s.KP * off)
	slave.AdjustFrequency(slave.FrequencyAdjustment() - s.KI*off/interval)
}

// Session couples a slave clock to a master through repeated exchanges.
type Session struct {
	Master *Clock
	Slave  *Clock
	Path   *Path
	Servo  *Servo
	ReqGap float64
}

// Run performs exchanges every interval seconds from t0 for n rounds and
// returns the true residual offset |slave-master| after each round.
func (s *Session) Run(t0, interval float64, n int) ([]float64, error) {
	if interval <= 0 {
		return nil, errors.New("ptp: sync interval must be positive")
	}
	if n <= 0 {
		return nil, errors.New("ptp: need at least one round")
	}
	res := make([]float64, 0, n)
	for i := 0; i < n; i++ {
		t := t0 + float64(i)*interval
		m, err := Exchange(t, s.Master, s.Slave, s.Path, s.ReqGap)
		if err != nil {
			return nil, err
		}
		s.Servo.Apply(m, s.Slave, interval)
		res = append(res, math.Abs(s.Slave.Offset()-s.Master.Offset()))
	}
	return res, nil
}

// RMS returns the root-mean-square of the last k values of xs (or all of
// them if k >= len(xs)).
func RMS(xs []float64, k int) float64 {
	if len(xs) == 0 {
		return 0
	}
	if k <= 0 || k > len(xs) {
		k = len(xs)
	}
	s := 0.0
	for _, x := range xs[len(xs)-k:] {
		s += x * x
	}
	return math.Sqrt(s / float64(k))
}
