package ptp

import (
	"math"
	"testing"
)

// TestEnsembleCrossNodeCorrelation is the paper's actual requirement: not
// just that each gateway tracks the grandmaster, but that any *pair* of
// gateways agree closely enough to correlate 50 kS/s power samples
// (20 µs spacing) across nodes.
func TestEnsembleCrossNodeCorrelation(t *testing.T) {
	const gateways = 45
	master, err := NewClock(0, 0, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	slaves := make([]*Clock, gateways)
	sessions := make([]*Session, gateways)
	for i := range slaves {
		slaves[i] = TypicalOscillator(int64(100 + i))
		path, err := NewPath(1e-6, 0, 50e-9, int64(200+i))
		if err != nil {
			t.Fatal(err)
		}
		sessions[i] = &Session{Master: master, Slave: slaves[i], Path: path, Servo: DefaultServo(), ReqGap: 100e-6}
	}
	// 90 rounds of 1-second syncs, interleaved across gateways as the
	// grandmaster would serve them.
	for round := 0; round < 90; round++ {
		for i, s := range sessions {
			tm := float64(round) + float64(i)*1e-3
			m, err := Exchange(tm, s.Master, s.Slave, s.Path, s.ReqGap)
			if err != nil {
				t.Fatal(err)
			}
			s.Servo.Apply(m, s.Slave, 1.0)
		}
	}
	// Pairwise disagreement across all gateways.
	maxPair := 0.0
	for i := 0; i < gateways; i++ {
		for j := i + 1; j < gateways; j++ {
			d := math.Abs(slaves[i].Offset() - slaves[j].Offset())
			if d > maxPair {
				maxPair = d
			}
		}
	}
	if maxPair > 20e-6 {
		t.Errorf("worst pairwise offset = %v s, want < 20 µs (one 50 kS/s sample)", maxPair)
	}
}

// TestUnsyncedEnsembleDrifts is the negative control: without PTP the
// typical oscillators drift tens of milliseconds apart within an hour,
// making cross-node correlation useless.
func TestUnsyncedEnsembleDrifts(t *testing.T) {
	clocks := make([]*Clock, 10)
	for i := range clocks {
		clocks[i] = TypicalOscillator(int64(300 + i))
	}
	for _, c := range clocks {
		if err := c.Advance(3600); err != nil {
			t.Fatal(err)
		}
	}
	maxPair := 0.0
	for i := 0; i < len(clocks); i++ {
		for j := i + 1; j < len(clocks); j++ {
			d := math.Abs(clocks[i].Offset() - clocks[j].Offset())
			if d > maxPair {
				maxPair = d
			}
		}
	}
	if maxPair < 1e-3 {
		t.Errorf("unsynced drift after 1 h = %v s, expected > 1 ms", maxPair)
	}
}
