package ptp

import (
	"math"
	"testing"
)

func TestClockValidation(t *testing.T) {
	if _, err := NewClock(0, 0, -1, 1); err == nil {
		t.Error("negative walk should error")
	}
	if _, err := NewClock(0, 0.01, 0, 1); err == nil {
		t.Error("absurd frequency error should error")
	}
}

func TestClockDrift(t *testing.T) {
	c, err := NewClock(1e-3, 10e-6, 0, 1) // 1 ms offset, 10 ppm drift, no walk
	if err != nil {
		t.Fatal(err)
	}
	r, err := c.Read(0)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(r-1e-3) > 1e-12 {
		t.Errorf("Read(0) = %v, want 1e-3", r)
	}
	// After 100 s, drift adds 1 ms.
	r, err = c.Read(100)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(r-(100+2e-3)) > 1e-9 {
		t.Errorf("Read(100) = %v, want 100.002", r)
	}
}

func TestClockBackwardsTime(t *testing.T) {
	c, err := NewClock(0, 0, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Read(10); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Read(5); err == nil {
		t.Error("backwards time should error")
	}
	if err := c.Advance(4); err == nil {
		t.Error("backwards Advance should error")
	}
}

func TestClockStepAndFrequency(t *testing.T) {
	c, err := NewClock(5e-3, 0, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	c.Step(-5e-3)
	if math.Abs(c.Offset()) > 1e-15 {
		t.Errorf("offset after step = %v", c.Offset())
	}
	c.AdjustFrequency(1e-6)
	if c.FrequencyAdjustment() != 1e-6 {
		t.Error("frequency adjustment not stored")
	}
	if err := c.Advance(10); err != nil {
		t.Fatal(err)
	}
	if math.Abs(c.Offset()-10e-6) > 1e-12 {
		t.Errorf("offset after steered advance = %v, want 1e-5", c.Offset())
	}
}

func TestTypicalOscillatorBounds(t *testing.T) {
	for seed := int64(0); seed < 20; seed++ {
		c := TypicalOscillator(seed)
		if math.Abs(c.Offset()) > 10e-3 {
			t.Errorf("seed %d: initial offset %v out of ±10ms", seed, c.Offset())
		}
	}
}

func TestPathValidation(t *testing.T) {
	if _, err := NewPath(0, 0, 0, 1); err == nil {
		t.Error("zero delay should error")
	}
	if _, err := NewPath(1e-6, 0, -1, 1); err == nil {
		t.Error("negative jitter should error")
	}
	if _, err := NewPath(1e-6, 5e-6, 0, 1); err == nil {
		t.Error("asymmetry > path should error")
	}
}

func TestExchangeIdealPath(t *testing.T) {
	// Symmetric jitter-free path: offset estimate must equal the true
	// clock offset exactly.
	master, err := NewClock(0, 0, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	slave, err := NewClock(3e-3, 0, 0, 2)
	if err != nil {
		t.Fatal(err)
	}
	path, err := NewPath(1e-6, 0, 0, 3)
	if err != nil {
		t.Fatal(err)
	}
	m, err := Exchange(0, master, slave, path, 10e-6)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(m.OffsetEst-3e-3) > 1e-12 {
		t.Errorf("OffsetEst = %v, want 3e-3", m.OffsetEst)
	}
	if math.Abs(m.DelayEst-1e-6) > 1e-12 {
		t.Errorf("DelayEst = %v, want 1e-6", m.DelayEst)
	}
	// T2 > T1 holds here because the slave runs ahead of the master; T4
	// vs T3 compares different clock domains, so no ordering is implied.
	if m.T2 <= m.T1 {
		t.Error("slave arrival should trail master departure plus offset")
	}
}

func TestExchangeAsymmetryBias(t *testing.T) {
	// Asymmetry a biases the offset estimate by a/2 — the classic PTP
	// error term.
	master, _ := NewClock(0, 0, 0, 1)
	slave, _ := NewClock(0, 0, 0, 2)
	path, err := NewPath(10e-6, 4e-6, 0, 3)
	if err != nil {
		t.Fatal(err)
	}
	m, err := Exchange(0, master, slave, path, 0)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(m.OffsetEst-2e-6) > 1e-12 {
		t.Errorf("OffsetEst = %v, want 2e-6 (asym/2)", m.OffsetEst)
	}
}

func TestExchangeNegativeGap(t *testing.T) {
	master, _ := NewClock(0, 0, 0, 1)
	slave, _ := NewClock(0, 0, 0, 2)
	path, _ := NewPath(1e-6, 0, 0, 3)
	if _, err := Exchange(0, master, slave, path, -1); err == nil {
		t.Error("negative gap should error")
	}
}

func TestServoValidation(t *testing.T) {
	if _, err := NewServo(0, 0.1, 1e-3); err == nil {
		t.Error("zero KP should error")
	}
	if _, err := NewServo(0.5, -1, 1e-3); err == nil {
		t.Error("negative KI should error")
	}
	if _, err := NewServo(0.5, 0.1, 0); err == nil {
		t.Error("zero step limit should error")
	}
}

func TestServoStepsLargeOffset(t *testing.T) {
	slave, _ := NewClock(50e-3, 0, 0, 2)
	s := DefaultServo()
	s.Apply(Measurement{OffsetEst: 50e-3}, slave, 1)
	if math.Abs(slave.Offset()) > 1e-12 {
		t.Errorf("offset after step = %v, want 0", slave.Offset())
	}
}

func TestSessionConvergence(t *testing.T) {
	// A realistic gateway: 20 ppm drift, random walk, hardware timestamps
	// (50 ns jitter). After 60 one-second rounds, residual offset must be
	// well under 10 µs — the paper's requirement for correlating 50 kS/s
	// samples across nodes (20 µs sample spacing).
	master, err := NewClock(0, 0, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	slave, err := NewClock(8e-3, 20e-6, 1e-7, 2)
	if err != nil {
		t.Fatal(err)
	}
	path, err := NewPath(1e-6, 0, 50e-9, 3)
	if err != nil {
		t.Fatal(err)
	}
	sess := &Session{Master: master, Slave: slave, Path: path, Servo: DefaultServo(), ReqGap: 100e-6}
	res, err := sess.Run(0, 1.0, 60)
	if err != nil {
		t.Fatal(err)
	}
	steady := RMS(res, 20)
	if steady > 10e-6 {
		t.Errorf("steady-state RMS offset = %v s, want < 10 µs", steady)
	}
}

func TestSessionJitterDegradesSync(t *testing.T) {
	// Software timestamping (100 µs jitter) must be far worse than
	// hardware timestamping — the reason the paper's EG uses PTP-capable
	// hardware.
	run := func(jitter float64) float64 {
		master, _ := NewClock(0, 0, 0, 10)
		slave, _ := NewClock(5e-3, 15e-6, 1e-7, 20)
		path, err := NewPath(50e-6, 0, jitter, 30)
		if err != nil {
			t.Fatal(err)
		}
		sess := &Session{Master: master, Slave: slave, Path: path, Servo: DefaultServo(), ReqGap: 100e-6}
		res, err := sess.Run(0, 1.0, 120)
		if err != nil {
			t.Fatal(err)
		}
		return RMS(res, 40)
	}
	hw := run(50e-9)
	sw := run(100e-6)
	if sw < hw*20 {
		t.Errorf("software sync RMS %v should be >20x worse than hardware %v", sw, hw)
	}
}

func TestSessionValidation(t *testing.T) {
	master, _ := NewClock(0, 0, 0, 1)
	slave, _ := NewClock(0, 0, 0, 2)
	path, _ := NewPath(1e-6, 0, 0, 3)
	sess := &Session{Master: master, Slave: slave, Path: path, Servo: DefaultServo()}
	if _, err := sess.Run(0, 0, 5); err == nil {
		t.Error("zero interval should error")
	}
	if _, err := sess.Run(0, 1, 0); err == nil {
		t.Error("zero rounds should error")
	}
}

func TestRMS(t *testing.T) {
	if RMS(nil, 3) != 0 {
		t.Error("empty RMS should be 0")
	}
	xs := []float64{3, 4}
	if math.Abs(RMS(xs, 0)-math.Sqrt(12.5)) > 1e-12 {
		t.Errorf("RMS = %v", RMS(xs, 0))
	}
	if RMS([]float64{1, 2, 3, 4}, 1) != 4 {
		t.Errorf("RMS last-1 = %v, want 4", RMS([]float64{1, 2, 3, 4}, 1))
	}
}
