// Package trace provides the persistence layer of the reproduction: CSV
// export/import of power sample series and generic experiment tables, plus
// JSON round-trips for structured results. The paper's monitoring pipeline
// records traces into a database for the ML components; this package is
// that (file-backed) database.
package trace

import (
	"encoding/csv"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"strconv"

	"davide/internal/sensor"
)

// WriteSamples writes a power sample series as two-column CSV (t, p).
func WriteSamples(w io.Writer, samples []sensor.Sample) error {
	if len(samples) == 0 {
		return errors.New("trace: no samples")
	}
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"t_s", "power_w"}); err != nil {
		return err
	}
	for _, s := range samples {
		if err := cw.Write([]string{
			strconv.FormatFloat(s.T, 'g', -1, 64),
			strconv.FormatFloat(s.P, 'g', -1, 64),
		}); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// ReadSamples parses a CSV sample series written by WriteSamples.
func ReadSamples(r io.Reader) ([]sensor.Sample, error) {
	cr := csv.NewReader(r)
	rows, err := cr.ReadAll()
	if err != nil {
		return nil, fmt.Errorf("trace: %w", err)
	}
	if len(rows) < 2 {
		return nil, errors.New("trace: no data rows")
	}
	if len(rows[0]) != 2 || rows[0][0] != "t_s" || rows[0][1] != "power_w" {
		return nil, errors.New("trace: unexpected header")
	}
	out := make([]sensor.Sample, 0, len(rows)-1)
	for i, row := range rows[1:] {
		if len(row) != 2 {
			return nil, fmt.Errorf("trace: row %d malformed", i+2)
		}
		t, err := strconv.ParseFloat(row[0], 64)
		if err != nil {
			return nil, fmt.Errorf("trace: row %d time: %w", i+2, err)
		}
		p, err := strconv.ParseFloat(row[1], 64)
		if err != nil {
			return nil, fmt.Errorf("trace: row %d power: %w", i+2, err)
		}
		out = append(out, sensor.Sample{T: t, P: p})
	}
	return out, nil
}

// Table is a generic experiment result table: a header plus rows, the
// shape every E* experiment prints and EXPERIMENTS.md records.
type Table struct {
	Title  string     `json:"title"`
	Header []string   `json:"header"`
	Rows   [][]string `json:"rows"`
}

// NewTable creates a table with the given title and column names.
func NewTable(title string, header ...string) (*Table, error) {
	if title == "" {
		return nil, errors.New("trace: empty table title")
	}
	if len(header) == 0 {
		return nil, errors.New("trace: table needs columns")
	}
	return &Table{Title: title, Header: header}, nil
}

// AddRow appends one row; the cell count must match the header.
func (t *Table) AddRow(cells ...string) error {
	if len(cells) != len(t.Header) {
		return fmt.Errorf("trace: row has %d cells, header has %d", len(cells), len(t.Header))
	}
	t.Rows = append(t.Rows, cells)
	return nil
}

// AddRowf appends a row of formatted values.
func (t *Table) AddRowf(format string, cells ...any) error {
	if len(cells) != len(t.Header) {
		return fmt.Errorf("trace: row has %d cells, header has %d", len(cells), len(t.Header))
	}
	row := make([]string, len(cells))
	for i, c := range cells {
		row[i] = fmt.Sprintf(format, c)
	}
	t.Rows = append(t.Rows, row)
	return nil
}

// WriteCSV renders the table as CSV.
func (t *Table) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(t.Header); err != nil {
		return err
	}
	for _, row := range t.Rows {
		if err := cw.Write(row); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// WriteMarkdown renders the table as a GitHub-flavoured markdown table.
func (t *Table) WriteMarkdown(w io.Writer) error {
	if _, err := fmt.Fprintf(w, "### %s\n\n", t.Title); err != nil {
		return err
	}
	if err := writeMDRow(w, t.Header); err != nil {
		return err
	}
	sep := make([]string, len(t.Header))
	for i := range sep {
		sep[i] = "---"
	}
	if err := writeMDRow(w, sep); err != nil {
		return err
	}
	for _, row := range t.Rows {
		if err := writeMDRow(w, row); err != nil {
			return err
		}
	}
	_, err := fmt.Fprintln(w)
	return err
}

func writeMDRow(w io.Writer, cells []string) error {
	if _, err := fmt.Fprint(w, "| "); err != nil {
		return err
	}
	for i, c := range cells {
		if i > 0 {
			if _, err := fmt.Fprint(w, " | "); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprint(w, c); err != nil {
			return err
		}
	}
	_, err := fmt.Fprintln(w, " |")
	return err
}

// MarshalJSON is the canonical JSON form.
func (t *Table) MarshalJSON() ([]byte, error) {
	type alias Table
	return json.Marshal((*alias)(t))
}

// LoadTable parses a JSON table.
func LoadTable(data []byte) (*Table, error) {
	var t Table
	if err := json.Unmarshal(data, &t); err != nil {
		return nil, fmt.Errorf("trace: %w", err)
	}
	if t.Title == "" || len(t.Header) == 0 {
		return nil, errors.New("trace: incomplete table")
	}
	for i, row := range t.Rows {
		if len(row) != len(t.Header) {
			return nil, fmt.Errorf("trace: row %d width mismatch", i)
		}
	}
	return &t, nil
}
