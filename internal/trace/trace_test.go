package trace

import (
	"bytes"
	"strings"
	"testing"

	"davide/internal/sensor"
)

func TestSamplesRoundTrip(t *testing.T) {
	in := []sensor.Sample{{T: 0, P: 100.5}, {T: 2e-5, P: 101}, {T: 4e-5, P: 99.25}}
	var buf bytes.Buffer
	if err := WriteSamples(&buf, in); err != nil {
		t.Fatal(err)
	}
	out, err := ReadSamples(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != len(in) {
		t.Fatalf("len = %d", len(out))
	}
	for i := range in {
		if out[i] != in[i] {
			t.Errorf("sample %d = %+v, want %+v", i, out[i], in[i])
		}
	}
}

func TestWriteSamplesEmpty(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteSamples(&buf, nil); err == nil {
		t.Error("empty samples should error")
	}
}

func TestReadSamplesErrors(t *testing.T) {
	cases := []string{
		"",
		"t_s,power_w\n",
		"bad,header\n1,2\n",
		"t_s,power_w\nnot-a-number,5\n",
		"t_s,power_w\n1,not-a-number\n",
	}
	for i, c := range cases {
		if _, err := ReadSamples(strings.NewReader(c)); err == nil {
			t.Errorf("case %d should error", i)
		}
	}
}

func TestTableBasics(t *testing.T) {
	if _, err := NewTable("", "a"); err == nil {
		t.Error("empty title should error")
	}
	if _, err := NewTable("t"); err == nil {
		t.Error("no columns should error")
	}
	tab, err := NewTable("E4 monitoring", "monitor", "rate", "error%")
	if err != nil {
		t.Fatal(err)
	}
	if err := tab.AddRow("IPMI", "1", "25.0"); err != nil {
		t.Fatal(err)
	}
	if err := tab.AddRow("EG", "50000"); err == nil {
		t.Error("short row should error")
	}
	if err := tab.AddRowf("%v", "EG", 50000, 0.05); err != nil {
		t.Fatal(err)
	}
	if err := tab.AddRowf("%v", 1); err == nil {
		t.Error("short formatted row should error")
	}
	if len(tab.Rows) != 2 {
		t.Errorf("rows = %d", len(tab.Rows))
	}
}

func TestTableCSV(t *testing.T) {
	tab, err := NewTable("x", "a", "b")
	if err != nil {
		t.Fatal(err)
	}
	if err := tab.AddRow("1", "2"); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := tab.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	want := "a,b\n1,2\n"
	if buf.String() != want {
		t.Errorf("CSV = %q, want %q", buf.String(), want)
	}
}

func TestTableMarkdown(t *testing.T) {
	tab, err := NewTable("Efficiency", "system", "GF/W")
	if err != nil {
		t.Fatal(err)
	}
	if err := tab.AddRow("D.A.V.I.D.E.", "10.0"); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := tab.WriteMarkdown(&buf); err != nil {
		t.Fatal(err)
	}
	s := buf.String()
	for _, want := range []string{"### Efficiency", "| system | GF/W |", "| --- | --- |", "| D.A.V.I.D.E. | 10.0 |"} {
		if !strings.Contains(s, want) {
			t.Errorf("markdown missing %q:\n%s", want, s)
		}
	}
}

func TestTableJSONRoundTrip(t *testing.T) {
	tab, err := NewTable("t", "a", "b")
	if err != nil {
		t.Fatal(err)
	}
	if err := tab.AddRow("1", "2"); err != nil {
		t.Fatal(err)
	}
	data, err := tab.MarshalJSON()
	if err != nil {
		t.Fatal(err)
	}
	got, err := LoadTable(data)
	if err != nil {
		t.Fatal(err)
	}
	if got.Title != "t" || len(got.Rows) != 1 || got.Rows[0][1] != "2" {
		t.Errorf("round trip = %+v", got)
	}
	if _, err := LoadTable([]byte("{")); err == nil {
		t.Error("bad JSON should error")
	}
	if _, err := LoadTable([]byte(`{"title":"","header":["a"]}`)); err == nil {
		t.Error("empty title should error")
	}
	if _, err := LoadTable([]byte(`{"title":"t","header":["a"],"rows":[["1","2"]]}`)); err == nil {
		t.Error("ragged rows should error")
	}
}
